"""Arithmetic circuits: the language of Prio's Valid predicates."""

from repro.circuit.circuit import (
    Circuit,
    CircuitBuilder,
    CircuitError,
    EvaluationTrace,
    Gate,
    Op,
    WireShares,
    batched_assertion_share,
)
from repro.circuit.compiled import (
    BatchTrace,
    CompiledCircuit,
    SparseAffineMap,
    compile_circuit,
)
from repro.circuit.gadgets import (
    assert_binary_decomposition,
    assert_bit,
    assert_bits,
    assert_one_hot,
    assert_product,
    assert_range_binary,
    assert_square,
)

__all__ = [
    "BatchTrace",
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "CompiledCircuit",
    "EvaluationTrace",
    "Gate",
    "Op",
    "SparseAffineMap",
    "WireShares",
    "batched_assertion_share",
    "compile_circuit",
    "assert_binary_decomposition",
    "assert_bit",
    "assert_bits",
    "assert_one_hot",
    "assert_product",
    "assert_range_binary",
    "assert_square",
]
