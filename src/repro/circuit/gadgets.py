"""Reusable validity-circuit gadgets.

The AFE ``Valid`` predicates of Section 5.2 are assembled from a small
set of recurring checks; each helper here appends the corresponding
gates/assertions to a :class:`~repro.circuit.circuit.CircuitBuilder`.

Costs (in multiplication gates, the SNIP's budget):

=====================  =======================
gadget                 mul gates
=====================  =======================
``assert_bit``         1 per bit
``assert_binary``      b (one per bit)
``assert_product``     1
``assert_square``      1
``assert_one_hot``     B (bit checks; selector sum is affine)
=====================  =======================
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.circuit import CircuitBuilder


def assert_bit(builder: CircuitBuilder, wire: int) -> None:
    """Constrain ``wire`` to {0, 1} via beta * (beta - 1) = 0.

    This is the paper's canonical example: one multiplication gate per
    bit of client data.
    """
    square = builder.mul(wire, wire)
    builder.assert_zero(builder.sub(square, wire))


def assert_bits(builder: CircuitBuilder, wires: Sequence[int]) -> None:
    for wire in wires:
        assert_bit(builder, wire)


def assert_binary_decomposition(
    builder: CircuitBuilder,
    value_wire: int,
    bit_wires: Sequence[int],
) -> None:
    """Constrain ``value = sum_i 2^i * bit_i`` with bits in {0, 1}.

    The integer-sum AFE's whole Valid predicate (Section 5.2): the bit
    checks cost b mul gates; the weighted-sum equality is affine.
    """
    assert_bits(builder, bit_wires)
    weights = [1 << i for i in range(len(bit_wires))]
    weighted = builder.linear_combination(weights, bit_wires)
    builder.assert_zero(builder.sub(value_wire, weighted))


def assert_product(
    builder: CircuitBuilder, x: int, y: int, claimed: int
) -> None:
    """Constrain ``claimed = x * y`` (one mul gate)."""
    builder.assert_zero(builder.sub(builder.mul(x, y), claimed))


def assert_square(builder: CircuitBuilder, x: int, claimed: int) -> None:
    """Constrain ``claimed = x^2`` — the variance AFE's extra check."""
    assert_product(builder, x, x, claimed)


def assert_one_hot(builder: CircuitBuilder, wires: Sequence[int]) -> None:
    """Constrain the wires to be a one-hot indicator vector.

    The frequency-count AFE's Valid predicate: every component is a
    bit, and the components sum to exactly one.
    """
    assert_bits(builder, wires)
    total = builder.wire_sum(list(wires))
    builder.assert_zero(builder.sub(total, builder.constant(1)))


def assert_range_binary(
    builder: CircuitBuilder,
    value_wire: int,
    n_bits: int,
) -> list[int]:
    """Constrain ``0 <= value < 2^n_bits`` by introducing fresh bit inputs.

    Returns the bit input wires (callers append the bit values to the
    encoding).  This is how Prio encodes b-bit integers: the client
    ships the bits alongside the value so the servers can range-check
    affinely + with b mul gates, instead of needing comparisons.
    """
    bit_wires = builder.inputs(n_bits)
    assert_binary_decomposition(builder, value_wire, bit_wires)
    return bit_wires
