"""Arithmetic circuits (Appendix C.1) with the zero-output convention.

A circuit is a DAG over field elements with input, constant, add, sub,
mul, and mul-by-constant gates.  Prio uses circuits to express the
``Valid`` predicate of an AFE; this module follows the Appendix I
"circuit optimization": instead of one wire that must equal 1, a
circuit exposes a list of *assertion wires* that must all equal 0 on a
valid input.  The verifier then checks a single random linear
combination of all assertion wires, which costs no extra
multiplication gates.

Two evaluation modes matter:

* :meth:`Circuit.evaluate` runs on plaintext values (the client/prover
  side, and ordinary testing).  It records the inputs and output of
  every multiplication gate — exactly the wire values the SNIP's
  f, g, h polynomials encode.

* :meth:`Circuit.reconstruct_wire_shares` runs on *additive shares*
  (the server/verifier side).  Multiplication-gate outputs cannot be
  computed locally from shares, so they are supplied by the caller
  (the SNIP verifier reads them out of the point-value form of h);
  every other wire is an affine function of inputs and mul outputs and
  is reconstructed share-locally.  Constants follow the leader
  convention of :func:`repro.sharing.share_of_constant`.

Gate lists are append-only and therefore already in topological order;
multiplication gates are numbered 1..M in that order, matching the
paper's labelling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Sequence

from repro.field.prime_field import FieldError, PrimeField


class CircuitError(ValueError):
    """Raised for malformed circuits or mismatched evaluation inputs."""


class Op(enum.Enum):
    INPUT = "input"
    CONST = "const"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MUL_CONST = "mul_const"


@dataclass(frozen=True)
class Gate:
    """One gate; ``left``/``right`` are indices of earlier gates.

    For INPUT, ``payload`` is the input position; for CONST and
    MUL_CONST it is the constant (MUL_CONST computes
    ``payload * wire[left]``).
    """

    op: Op
    left: int = -1
    right: int = -1
    payload: int = 0


@dataclass
class EvaluationTrace:
    """Everything the SNIP prover needs from one plaintext evaluation."""

    wire_values: list[int]
    #: (u_t, v_t, w_t) per multiplication gate, topological order.
    mul_inputs_left: list[int] = dc_field(default_factory=list)
    mul_inputs_right: list[int] = dc_field(default_factory=list)
    mul_outputs: list[int] = dc_field(default_factory=list)
    #: values on the assertion wires (all zero iff the input is valid)
    assertion_values: list[int] = dc_field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        return all(v == 0 for v in self.assertion_values)


class Circuit:
    """An immutable arithmetic circuit; build with :class:`CircuitBuilder`."""

    def __init__(
        self,
        gates: list[Gate],
        n_inputs: int,
        assertions: list[int],
        name: str = "circuit",
    ) -> None:
        self.gates = gates
        self.n_inputs = n_inputs
        self.assertions = assertions
        self.name = name
        self.mul_gates: list[int] = [
            i for i, g in enumerate(gates) if g.op is Op.MUL
        ]
        self._validate()

    def _validate(self) -> None:
        seen_inputs = set()
        for i, gate in enumerate(self.gates):
            if gate.op is Op.INPUT:
                if gate.payload in seen_inputs:
                    raise CircuitError(f"duplicate input index {gate.payload}")
                if not 0 <= gate.payload < self.n_inputs:
                    raise CircuitError(f"input index {gate.payload} out of range")
                seen_inputs.add(gate.payload)
            if gate.op in (Op.ADD, Op.SUB, Op.MUL):
                if not (0 <= gate.left < i and 0 <= gate.right < i):
                    raise CircuitError(f"gate {i} references a later gate")
            if gate.op is Op.MUL_CONST and not 0 <= gate.left < i:
                raise CircuitError(f"gate {i} references a later gate")
        for wire in self.assertions:
            if not 0 <= wire < len(self.gates):
                raise CircuitError(f"assertion wire {wire} out of range")

    # ------------------------------------------------------------------

    @property
    def n_mul_gates(self) -> int:
        """M, the SNIP cost parameter (proof length ~ 2M)."""
        return len(self.mul_gates)

    def __len__(self) -> int:
        return len(self.gates)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={self.n_inputs}, "
            f"gates={len(self.gates)}, muls={self.n_mul_gates}, "
            f"assertions={len(self.assertions)})"
        )

    # ------------------------------------------------------------------
    # Plaintext evaluation (prover side)
    # ------------------------------------------------------------------

    def evaluate(
        self, field: PrimeField, inputs: Sequence[int]
    ) -> EvaluationTrace:
        """Evaluate on plaintext inputs, recording mul-gate wire values."""
        if len(inputs) != self.n_inputs:
            raise CircuitError(
                f"{self.name} expects {self.n_inputs} inputs, got {len(inputs)}"
            )
        p = field.modulus
        values: list[int] = [0] * len(self.gates)
        trace = EvaluationTrace(wire_values=values)
        for i, gate in enumerate(self.gates):
            if gate.op is Op.INPUT:
                values[i] = inputs[gate.payload] % p
            elif gate.op is Op.CONST:
                values[i] = gate.payload % p
            elif gate.op is Op.ADD:
                values[i] = (values[gate.left] + values[gate.right]) % p
            elif gate.op is Op.SUB:
                values[i] = (values[gate.left] - values[gate.right]) % p
            elif gate.op is Op.MUL_CONST:
                values[i] = (gate.payload * values[gate.left]) % p
            else:  # MUL
                u = values[gate.left]
                v = values[gate.right]
                w = (u * v) % p
                values[i] = w
                trace.mul_inputs_left.append(u)
                trace.mul_inputs_right.append(v)
                trace.mul_outputs.append(w)
        trace.assertion_values = [values[w] for w in self.assertions]
        return trace

    def check(self, field: PrimeField, inputs: Sequence[int]) -> bool:
        """True iff all assertion wires evaluate to zero (Valid(x) holds)."""
        return self.evaluate(field, inputs).is_valid

    # ------------------------------------------------------------------
    # Share-local evaluation (verifier side)
    # ------------------------------------------------------------------

    def reconstruct_wire_shares(
        self,
        field: PrimeField,
        input_share: Sequence[int],
        mul_output_shares: Sequence[int],
        is_leader: bool,
    ) -> "WireShares":
        """Derive a share of every wire from input and mul-output shares.

        This is Step 2 of the SNIP (Section 4.2): each server holds a
        share of each input wire and (via the h polynomial) a share of
        each multiplication-gate output wire; every other wire value is
        an affine function of those, so a share of it can be computed
        locally.  Constants are contributed by the leader only.
        """
        if len(input_share) != self.n_inputs:
            raise CircuitError(
                f"{self.name} expects {self.n_inputs} input shares, "
                f"got {len(input_share)}"
            )
        if len(mul_output_shares) != self.n_mul_gates:
            raise CircuitError(
                f"{self.name} has {self.n_mul_gates} mul gates, got "
                f"{len(mul_output_shares)} output shares"
            )
        p = field.modulus
        values: list[int] = [0] * len(self.gates)
        mul_left: list[int] = []
        mul_right: list[int] = []
        mul_index = 0
        for i, gate in enumerate(self.gates):
            if gate.op is Op.INPUT:
                values[i] = input_share[gate.payload] % p
            elif gate.op is Op.CONST:
                values[i] = gate.payload % p if is_leader else 0
            elif gate.op is Op.ADD:
                values[i] = (values[gate.left] + values[gate.right]) % p
            elif gate.op is Op.SUB:
                values[i] = (values[gate.left] - values[gate.right]) % p
            elif gate.op is Op.MUL_CONST:
                values[i] = (gate.payload * values[gate.left]) % p
            else:  # MUL: output supplied, inputs recorded for f/g
                mul_left.append(values[gate.left])
                mul_right.append(values[gate.right])
                values[i] = mul_output_shares[mul_index] % p
                mul_index += 1
        assertion_shares = [values[w] for w in self.assertions]
        return WireShares(
            wire_values=values,
            mul_inputs_left=mul_left,
            mul_inputs_right=mul_right,
            assertion_shares=assertion_shares,
        )


@dataclass
class WireShares:
    """One server's shares of every wire (verifier-side reconstruction)."""

    wire_values: list[int]
    mul_inputs_left: list[int]
    mul_inputs_right: list[int]
    assertion_shares: list[int]


class CircuitBuilder:
    """Incrementally build a :class:`Circuit`.

    Wires are plain integer handles.  The builder folds constants and
    canonicalizes const*wire products into MUL_CONST gates so that only
    genuine variable*variable products consume multiplication gates
    (the quantity SNIP proof size scales with).
    """

    def __init__(self, field: PrimeField, name: str = "circuit") -> None:
        self.field = field
        self.name = name
        self._gates: list[Gate] = []
        self._assertions: list[int] = []
        self._n_inputs = 0
        self._const_cache: dict[int, int] = {}

    # -- wire creation --------------------------------------------------

    def input(self) -> int:
        wire = len(self._gates)
        self._gates.append(Gate(Op.INPUT, payload=self._n_inputs))
        self._n_inputs += 1
        return wire

    def inputs(self, n: int) -> list[int]:
        return [self.input() for _ in range(n)]

    def constant(self, value: int) -> int:
        value %= self.field.modulus
        if value in self._const_cache:
            return self._const_cache[value]
        wire = len(self._gates)
        self._gates.append(Gate(Op.CONST, payload=value))
        self._const_cache[value] = wire
        return wire

    # -- operations ------------------------------------------------------

    def _is_const(self, wire: int) -> bool:
        return self._gates[wire].op is Op.CONST

    def _const_value(self, wire: int) -> int:
        return self._gates[wire].payload

    def add(self, a: int, b: int) -> int:
        if self._is_const(a) and self._is_const(b):
            return self.constant(self._const_value(a) + self._const_value(b))
        wire = len(self._gates)
        self._gates.append(Gate(Op.ADD, left=a, right=b))
        return wire

    def sub(self, a: int, b: int) -> int:
        if self._is_const(a) and self._is_const(b):
            return self.constant(self._const_value(a) - self._const_value(b))
        wire = len(self._gates)
        self._gates.append(Gate(Op.SUB, left=a, right=b))
        return wire

    def mul(self, a: int, b: int) -> int:
        if self._is_const(a) and self._is_const(b):
            return self.constant(self._const_value(a) * self._const_value(b))
        if self._is_const(a):
            return self.mul_const(self._const_value(a), b)
        if self._is_const(b):
            return self.mul_const(self._const_value(b), a)
        wire = len(self._gates)
        self._gates.append(Gate(Op.MUL, left=a, right=b))
        return wire

    def mul_const(self, constant: int, a: int) -> int:
        constant %= self.field.modulus
        if self._is_const(a):
            return self.constant(constant * self._const_value(a))
        if constant == 0:
            return self.constant(0)
        if constant == 1:
            return a
        wire = len(self._gates)
        self._gates.append(Gate(Op.MUL_CONST, left=a, payload=constant))
        return wire

    def add_const(self, a: int, constant: int) -> int:
        return self.add(a, self.constant(constant))

    def linear_combination(
        self, coefficients: Sequence[int], wires: Sequence[int]
    ) -> int:
        """``sum_i c_i * w_i`` using only affine gates.

        Zero-coefficient terms emit no gates at all, constant wires fold
        into a single folded constant, and unit coefficients reuse the
        wire directly (via :meth:`mul_const`) — the common sparse
        selector rows in the workload AFEs cost gates only for the
        entries that are actually live.
        """
        if len(coefficients) != len(wires):
            raise CircuitError("coefficient/wire count mismatch")
        p = self.field.modulus
        const_acc = 0
        acc: int | None = None
        for c, w in zip(coefficients, wires):
            c %= p
            if c == 0:
                continue
            if self._is_const(w):
                const_acc = (const_acc + c * self._const_value(w)) % p
                continue
            term = self.mul_const(c, w)
            acc = term if acc is None else self.add(acc, term)
        if acc is None:
            return self.constant(const_acc)
        if const_acc:
            acc = self.add(acc, self.constant(const_acc))
        return acc

    def wire_sum(self, wires: Sequence[int]) -> int:
        """``sum_i w_i``; constant wires fold into one folded constant."""
        p = self.field.modulus
        const_acc = 0
        acc: int | None = None
        for w in wires:
            if self._is_const(w):
                const_acc = (const_acc + self._const_value(w)) % p
                continue
            acc = w if acc is None else self.add(acc, w)
        if acc is None:
            return self.constant(const_acc)
        if const_acc:
            acc = self.add(acc, self.constant(const_acc))
        return acc

    # -- assertions -------------------------------------------------------

    def assert_zero(self, wire: int) -> None:
        """Require this wire to be 0 on every valid input."""
        if not 0 <= wire < len(self._gates):
            raise CircuitError(f"unknown wire {wire}")
        self._assertions.append(wire)

    def assert_equal(self, a: int, b: int) -> None:
        self.assert_zero(self.sub(a, b))

    def assert_equals_const(self, wire: int, constant: int) -> None:
        self.assert_zero(self.sub(wire, self.constant(constant)))

    # ----------------------------------------------------------------------

    def build(self) -> Circuit:
        if self._n_inputs == 0:
            raise CircuitError("circuit has no inputs")
        if not self._assertions:
            raise CircuitError(
                "circuit has no assertions; a Valid circuit must constrain "
                "its input"
            )
        return Circuit(
            gates=list(self._gates),
            n_inputs=self._n_inputs,
            assertions=list(self._assertions),
            name=self.name,
        )


def batched_assertion_share(
    field: PrimeField,
    assertion_shares: Sequence[int],
    challenge_coefficients: Sequence[int],
) -> int:
    """One server's share of ``sum_j r_j * W_j`` (Appendix I batching).

    Each server applies the same public challenge coefficients to its
    assertion-wire shares; across servers, the combined values sum to
    zero iff (w.h.p.) every assertion wire is zero.
    """
    if len(assertion_shares) != len(challenge_coefficients):
        raise FieldError("challenge length mismatch")
    return field.inner_product(challenge_coefficients, assertion_shares)
