"""Radix-2 number-theoretic transform and evaluation domains.

The SNIP prover needs O(M log M) polynomial arithmetic (Table 2: the
client does ``M log M`` field multiplications).  The paper's prototype
used FFT routines from FLINT via C; this reproduction implements an
iterative in-place radix-2 NTT over the FFT-friendly fields in
:mod:`repro.field.parameters`.

An :class:`EvaluationDomain` is the multiplicative subgroup
``{w^0, w^1, ..., w^{N-1}}`` of order ``N = 2^k``.  The SNIP places the
wire values of the M multiplication gates at the first ``M + 1`` domain
points (index 0 carries the random masking value f(0)/g(0)), so that:

* interpolation and evaluation are NTTs,
* the product polynomial ``h = f * g`` lives on the double-size domain,
  whose *even-indexed* points coincide with the original domain — which
  is exactly what lets servers read multiplication-gate output wires
  straight out of the point-value form of ``h`` (Appendix I,
  "verification without interpolation").
"""

from __future__ import annotations

from typing import Sequence

from repro.field.prime_field import FieldError, PrimeField


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def ntt(field: PrimeField, values: Sequence[int], root: int) -> list[int]:
    """Forward transform: coefficients -> evaluations on the domain of ``root``.

    ``len(values)`` must be a power of two and ``root`` a primitive root
    of unity of exactly that order.  Iterative Cooley-Tukey with
    bit-reversal permutation; all arithmetic on native bigints.
    """
    n = len(values)
    if n & (n - 1) != 0:
        raise FieldError(f"NTT size must be a power of two, got {n}")
    p = field.modulus
    out = list(values)
    if n == 1:
        return out

    # Bit-reversal permutation.
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            out[i], out[j] = out[j], out[i]

    # Butterfly passes with precomputed twiddle tables per stage.
    length = 2
    while length <= n:
        w_len = pow(root, n // length, p)
        half = length >> 1
        # twiddles for this stage
        twiddles = [1] * half
        for i in range(1, half):
            twiddles[i] = (twiddles[i - 1] * w_len) % p
        for start in range(0, n, length):
            for i in range(half):
                lo = out[start + i]
                hi = (out[start + i + half] * twiddles[i]) % p
                out[start + i] = (lo + hi) % p
                out[start + i + half] = (lo - hi) % p
        length <<= 1
    return out


def intt(field: PrimeField, values: Sequence[int], root: int) -> list[int]:
    """Inverse transform: evaluations -> coefficients."""
    n = len(values)
    p = field.modulus
    inv_root = pow(root, -1, p)
    out = ntt(field, values, inv_root)
    n_inv = pow(n, -1, p)
    return [(v * n_inv) % p for v in out]


def ntt_batch(
    field: PrimeField,
    rows: Sequence[Sequence[int]],
    root: int,
    force_pure: bool | None = None,
) -> list[list[int]]:
    """Forward-transform many equal-length rows over a shared domain.

    The batched SNIP prover interpolates/evaluates every submission's
    f and g polynomials in one sweep; each stage's butterflies run over
    the whole ``(batch, n)`` matrix at once via the vectorized backend
    in :mod:`repro.field.batch` (pure-Python fallback: scalar NTTs).
    """
    from repro.field.batch import ntt_rows

    return ntt_rows(field, rows, root, force_pure)


def intt_batch(
    field: PrimeField,
    rows: Sequence[Sequence[int]],
    root: int,
    force_pure: bool | None = None,
) -> list[list[int]]:
    """Inverse-transform many equal-length rows over a shared domain."""
    from repro.field.batch import intt_rows

    return intt_rows(field, rows, root, force_pure)


class EvaluationDomain:
    """The order-``size`` multiplicative subgroup used as an NTT domain.

    Caches the domain points and (per requested ``r``) the Lagrange
    evaluation constants, since the SNIP verifier reuses one ``r`` for
    many submissions (Appendix I fixed-point optimization).
    """

    def __init__(self, field: PrimeField, size: int) -> None:
        if size < 1 or size & (size - 1) != 0:
            raise FieldError(f"domain size must be a power of two, got {size}")
        self.field = field
        self.size = size
        self.root = field.root_of_unity(size)
        p = field.modulus
        points = [1] * size
        for i in range(1, size):
            points[i] = (points[i - 1] * self.root) % p
        self.points: list[int] = points
        self._point_set = set(points)

    def evaluate(self, coeffs: Sequence[int]) -> list[int]:
        """Evaluate a polynomial (degree < size) at every domain point."""
        if len(coeffs) > self.size:
            raise FieldError(
                f"polynomial degree {len(coeffs) - 1} too large for "
                f"domain of size {self.size}"
            )
        padded = list(coeffs) + [0] * (self.size - len(coeffs))
        return ntt(self.field, padded, self.root)

    def interpolate(self, evals: Sequence[int]) -> list[int]:
        """Coefficients of the degree < size polynomial with these values."""
        if len(evals) != self.size:
            raise FieldError(
                f"expected {self.size} evaluations, got {len(evals)}"
            )
        return intt(self.field, evals, self.root)

    def evaluate_batch(
        self,
        coeff_rows: Sequence[Sequence[int]],
        force_pure: bool | None = None,
    ) -> list[list[int]]:
        """Evaluate many polynomials at every domain point in one sweep."""
        padded = []
        for coeffs in coeff_rows:
            if len(coeffs) > self.size:
                raise FieldError(
                    f"polynomial degree {len(coeffs) - 1} too large for "
                    f"domain of size {self.size}"
                )
            padded.append(list(coeffs) + [0] * (self.size - len(coeffs)))
        return ntt_batch(self.field, padded, self.root, force_pure)

    def interpolate_batch(
        self,
        eval_rows: Sequence[Sequence[int]],
        force_pure: bool | None = None,
    ) -> list[list[int]]:
        """Interpolate many point-value rows in one sweep."""
        for evals in eval_rows:
            if len(evals) != self.size:
                raise FieldError(
                    f"expected {self.size} evaluations, got {len(evals)}"
                )
        return intt_batch(self.field, list(eval_rows), self.root, force_pure)

    def contains_point(self, r: int) -> bool:
        return r % self.field.modulus in self._point_set

    def lagrange_coefficients_at(self, r: int) -> list[int]:
        """Constants ``c_j`` with ``P(r) = sum_j c_j * P(w^j)`` in O(N).

        Closed form over a root-of-unity domain:

            l_j(r) = w^j * (r^N - 1) / (N * (r - w^j))

        ``r`` must lie outside the domain (the SNIP verifier resamples
        in the negligible-probability event that it does not; callers
        that *want* a domain point should read the evaluation directly).
        """
        p = self.field.modulus
        r %= p
        if self.contains_point(r):
            raise FieldError("r must lie outside the evaluation domain")
        n = self.size
        r_n_minus_1 = (pow(r, n, p) - 1) % p
        n_inv = pow(n, -1, p)
        scale = (r_n_minus_1 * n_inv) % p
        # Batch-invert the denominators (r - w^j) with Montgomery's trick.
        denoms = [(r - w) % p for w in self.points]
        inverses = batch_inverse(self.field, denoms)
        return [
            (w * scale % p) * inv % p
            for w, inv in zip(self.points, inverses)
        ]


def batch_inverse(field: PrimeField, values: Sequence[int]) -> list[int]:
    """Invert many nonzero elements with one modular inversion.

    Montgomery's trick: prefix products, a single inversion, then a
    backward sweep.  Turns N inversions into 3N multiplications.
    """
    p = field.modulus
    n = len(values)
    if n == 0:
        return []
    prefix = [0] * n
    acc = 1
    for i, v in enumerate(values):
        if v % p == 0:
            raise FieldError("cannot invert zero")
        acc = (acc * v) % p
        prefix[i] = acc
    inv_acc = pow(acc, -1, p)
    out = [0] * n
    for i in range(n - 1, 0, -1):
        out[i] = (prefix[i - 1] * inv_acc) % p
        inv_acc = (inv_acc * values[i]) % p
    out[0] = inv_acc
    return out


def poly_mul_ntt(
    field: PrimeField,
    a: Sequence[int],
    b: Sequence[int],
    force_pure: bool | None = None,
) -> list[int]:
    """Product of two coefficient-form polynomials via NTT, O(n log n).

    When the numpy batch backend is live, the two forward transforms
    run as one two-row batch NTT and the pointwise product and inverse
    transform stay in limb planes; the pure path is the scalar
    transform pair.  Both produce identical canonical coefficients.
    """
    if not a or not b:
        return []
    out_len = len(a) + len(b) - 1
    size = next_power_of_two(out_len)
    domain = EvaluationDomain(field, size)
    from repro.field.batch import BatchVector, use_numpy

    if use_numpy(force_pure):
        padded = [
            list(a) + [0] * (size - len(a)),
            list(b) + [0] * (size - len(b)),
        ]
        evals = BatchVector.from_ints(field, padded, force_pure).ntt(
            domain.root
        )
        product = evals.take_rows([0]) * evals.take_rows([1])
        coeffs = product.intt(domain.root).row_ints(0)[:out_len]
    else:
        ea = domain.evaluate(a)
        eb = domain.evaluate(b)
        p = field.modulus
        product = [(x * y) % p for x, y in zip(ea, eb)]
        coeffs = domain.interpolate(product)[:out_len]
    # Canonical form: strip trailing zeros so results match poly_mul.
    while coeffs and coeffs[-1] == 0:
        coeffs.pop()
    return coeffs
