"""Vectorized batch field arithmetic — the throughput backend.

Prio's server cost is dominated by per-submission field arithmetic:
polynomial evaluation inside SNIP checking and share accumulation
(Sections 4-6; the NSDI evaluation's throughput figures all measure
exactly these paths).  The scalar :class:`~repro.field.prime_field.PrimeField`
API performs one Python bigint operation per element; this module
performs the same arithmetic over *whole vectors (or batches of
vectors) at once*, with two interchangeable backends:

numpy limb backend (``"numpy"``)
    The 87-/265-bit moduli do not fit in 64-bit SIMD lanes, so each
    element is split into base-``2^24`` limbs stored as parallel
    ``int64`` planes (shape ``(L, *vector_shape)``).  24-bit limbs —
    rather than the 30-bit limbs a CRT residue system would use — keep
    every limb exactly three bytes (so wire-format bytes convert to
    limbs with pure numpy) and leave 15 bits of headroom per lane:
    limb products are 48 bits, so *lazy reduction* can accumulate
    thousands of products in an ``int64`` lane before a single carry
    pass, which is what makes batched inner products one fused
    matrix multiply per limb pair.  Canonical reduction mod ``p`` is a
    vectorized Barrett reduction (HAC 14.42 in radix ``2^24``), so
    every op returns exact canonical representatives — the backend is
    bit-for-bit equivalent to the scalar path, which the randomized
    equivalence suite asserts.

pure-Python backend (``"pure"``)
    The same API implemented with scalar bigint loops.  Selected
    automatically when numpy is unavailable, or forced with the
    environment variable ``REPRO_FORCE_PURE=1`` (the CI matrix runs
    the whole test suite both ways).

Backend selection happens at call time via :func:`use_numpy`; every
public entry point also takes ``force_pure`` for explicit control.

The high-level entry point is :class:`BatchVector` (elementwise
add/sub/mul/scale, dot products, NTT butterflies over whole vectors);
the SNIP/protocol layers use the row-oriented helpers
(:func:`dot_rows`, :func:`dot_rows_multi`, :func:`ntt_rows`, ...)
that take and return plain ``list[int]`` rows.

Plane-resident ingest
---------------------

Profiling the batched verifier showed that the remaining majority of
server time was not field math but the *crossing*: wire bytes ->
``int.from_bytes`` -> Python bigints -> limb planes, plus one scalar
PRG expansion per seed packet.  The byte codecs here close that gap —
the 24-bit limb radix was chosen so each limb is exactly three wire
bytes, which lets both directions run as pure numpy reshapes:

* :func:`decode_bytes_batch` maps concatenated big-endian wire bodies
  straight to ``(L, B, n)`` int64 planes (checked variant rejects
  out-of-range elements; ``check=False`` Barrett-canonicalizes),
* :func:`encode_bytes_batch` is the inverse,
* :func:`rejection_sample_batch` is the vectorized core of the PRG:
  fixed-width XOF windows -> masked candidates -> ``< p`` acceptance
  flags -> first-``n`` survivors per row, bit-exact with the scalar
  sampler in :mod:`repro.sharing.prg`,
* :func:`assemble_rows` stacks rows of existing batches (plane copies,
  no re-encode) into the per-server ``(B, z_len)`` share matrix, and
* :func:`dot_batch_multi` applies prepared weight functionals to an
  already-ingested batch.

Together these keep a verification batch in limb-plane form from the
socket to the accept/reject verdict.  The remaining Python-int
boundaries are deliberate and tiny: per-submission round-1/round-2
scalars (four elements each), the Beaver-triple columns (three ints
per submission), and the final published aggregate.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.field.prime_field import FieldError, PrimeField

try:  # numpy is optional: every code path has a pure-Python fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_FORCE_PURE
    _np = None

#: limb radix: 3 bytes per limb, 15 bits of lazy-reduction headroom
LIMB_BITS = 24
LIMB_BASE = 1 << LIMB_BITS
LIMB_MASK = LIMB_BASE - 1

_M48 = (1 << 48) - 1


def numpy_available() -> bool:
    """True iff numpy imported successfully."""
    return _np is not None


def use_numpy(force_pure: bool | None = None) -> bool:
    """Resolve the backend for one call.

    ``force_pure=True`` always selects the pure backend; ``False``
    demands numpy (raises if missing); ``None`` (the default) uses
    numpy when available unless ``REPRO_FORCE_PURE=1`` is set.
    """
    if force_pure is True:
        return False
    if force_pure is False:
        if _np is None:
            raise FieldError("numpy backend requested but numpy is missing")
        return True
    if _np is None:
        return False
    return os.environ.get("REPRO_FORCE_PURE") != "1"


def backend_name(force_pure: bool | None = None) -> str:
    return "numpy" if use_numpy(force_pure) else "pure"


#: below this many total elements (rows x row width) a batch operation
#: pays more in numpy dispatch than the limb planes save
TINY_BATCH_ELEMENTS = 512


def tiny_batch_force_pure(
    total_elements: int, force_pure: bool | None = None
) -> bool | None:
    """Resolve ``force_pure``, preferring pure Python for tiny batches.

    Both backends are bit-exact, so auto-selection (``None``) may pick
    by work size: a batch of one over a few gates runs faster as plain
    bigint loops.  Explicit ``True``/``False`` is passed through.
    """
    if force_pure is None and total_elements < TINY_BATCH_ELEMENTS:
        return True
    return force_pure


# ----------------------------------------------------------------------
# Per-field limb context (numpy backend)
# ----------------------------------------------------------------------


class _LimbContext:
    """Cached limb-decomposition constants for one modulus."""

    __slots__ = (
        "field", "modulus", "n_limbs", "p_planes", "p_ext_planes",
        "mu_planes", "max_dot_terms", "_twiddle_cache",
    )

    def __init__(self, field: PrimeField) -> None:
        p = field.modulus
        self.field = field
        self.modulus = p
        bits = p.bit_length()
        self.n_limbs = max(1, -(-bits // LIMB_BITS))
        L = self.n_limbs
        self.p_planes = _np.array(_int_limbs(p, L), dtype=_np.int64)
        self.p_ext_planes = _np.array(_int_limbs(p, L + 1), dtype=_np.int64)
        mu = (1 << (2 * L * LIMB_BITS)) // p
        self.mu_planes = _np.array(_int_limbs(mu, L + 1), dtype=_np.int64)
        # Lazy dot products stay exact while (a) int64 matmul lanes do
        # not overflow: terms*L*2^48 < 2^63, and (b) the accumulated
        # value fits Barrett's input domain: terms*p^2 < 2^(48L).
        lane_limit = 1 << (63 - 2 * LIMB_BITS)
        self.max_dot_terms = max(1, min(
            lane_limit // L, 1 << max(0, 2 * L * LIMB_BITS - 2 * bits)
        ))
        self._twiddle_cache: dict = {}

    def twiddle_planes(self, root: int, length: int):
        """Limb planes of ``[root^0 .. root^{length-1}]`` (cached)."""
        key = (root, length)
        cached = self._twiddle_cache.get(key)
        if cached is None:
            p = self.modulus
            tws = [1] * length
            for i in range(1, length):
                tws[i] = tws[i - 1] * root % p
            cached = _encode(self, tws).reshape(self.n_limbs, length)
            self._twiddle_cache[key] = cached
        return cached


_CTX_CACHE: dict[int, _LimbContext] = {}


def _ctx(field: PrimeField) -> _LimbContext:
    ctx = _CTX_CACHE.get(field.modulus)
    if ctx is None:
        ctx = _CTX_CACHE[field.modulus] = _LimbContext(field)
    return ctx


def _int_limbs(x: int, n_limbs: int) -> list[int]:
    return [(x >> (LIMB_BITS * i)) & LIMB_MASK for i in range(n_limbs)]


# ----------------------------------------------------------------------
# numpy limb kernels.  Convention: limb planes come FIRST — an array of
# shape (n_limbs, *element_shape) — so each plane is contiguous and
# every kernel pass streams over cache-friendly memory.
# ----------------------------------------------------------------------


def _encode(ctx: _LimbContext, values: Sequence[int]):
    """Python ints (canonical, in [0, p)) -> limb planes (L, n).

    Two limbs per 48-bit chunk, extracted with object-dtype ufuncs
    (numpy's C-level loop over PyNumber shift/mask is the cheapest
    list->numpy crossing measured).  The top chunk is deliberately
    left unmasked: values too wide for the field surface as an
    ``OverflowError`` or an out-of-range limb, which
    :func:`_encode_checked` turns into a canonicalizing retry instead
    of silent truncation.
    """
    L = ctx.n_limbs
    n = len(values)
    planes = _np.zeros((L, n), dtype=_np.int64)
    if n == 0:
        return planes
    obj = _np.array(values if isinstance(values, list) else list(values),
                    dtype=object)
    for chunk in range(0, L, 2):
        shift = 48 * (chunk // 2)
        col = (obj >> shift) if shift else obj
        if chunk + 2 < L:
            col = col & _M48
        col64 = col.astype(_np.int64)
        if chunk + 1 < L:
            planes[chunk] = col64 & LIMB_MASK
            planes[chunk + 1] = col64 >> LIMB_BITS
        else:
            planes[chunk] = col64
    return planes


def _encode_checked(ctx: _LimbContext, values: Sequence[int]):
    """Encode with a vectorized canonicality check.

    The optimistic mask/shift encode is only correct for canonical
    inputs; rather than paying a Python ``% p`` per element up front,
    encode first and verify the limb planes numerically (negative or
    oversized inputs surface as out-of-range limbs or values >= p).
    Only on violation — or Python ints too wide for int64 lanes — is
    the slow canonicalizing pass taken.
    """
    try:
        planes = _encode(ctx, values)
    except (OverflowError, TypeError):
        return _encode(ctx, [v % ctx.modulus for v in values])
    if planes.size:
        in_range = bool(
            (planes >= 0).all() and (planes <= LIMB_MASK).all()
        )
        if in_range:
            _, ge_p = _borrow_sub(
                planes,
                ctx.p_planes.reshape((-1,) + (1,) * (planes.ndim - 1)),
            )
            in_range = not bool(ge_p.any())
        if not in_range:
            return _encode(ctx, [v % ctx.modulus for v in values])
    return planes


def _decode(ctx: _LimbContext, planes) -> list[int]:
    """Limb planes (L, n) -> canonical Python ints."""
    L = planes.shape[0]
    flat = planes.reshape(L, -1)
    cols = []
    for chunk in range(0, L, 2):
        col = flat[chunk]
        if chunk + 1 < L:
            col = col | (flat[chunk + 1] << LIMB_BITS)
        cols.append(col.tolist())
    out = cols[0]
    for idx in range(1, len(cols)):
        shift = 48 * idx
        out = [acc | (c << shift) for acc, c in zip(out, cols[idx])]
    return out


def _carry(planes, width: int):
    """Propagate carries so every plane is a 24-bit limb.

    Input entries must be nonnegative int64; the true value must fit in
    ``width`` limbs (the final carry out must be zero).
    """
    m = planes.shape[0]
    out = _np.zeros((width,) + planes.shape[1:], dtype=_np.int64)
    out[:m] = planes
    for i in range(width - 1):
        c = out[i] >> LIMB_BITS
        out[i] &= LIMB_MASK
        out[i + 1] += c
    return out


def _borrow_sub(a, b_planes):
    """``a - b`` limbwise with borrow; returns (diff mod base^W, ok).

    ``a`` has shape (W, ...); ``b_planes`` is broadcastable to it.
    ``ok`` is True where no final borrow occurred (i.e. a >= b).
    """
    W = a.shape[0]
    out = _np.empty_like(a)
    borrow = _np.zeros(a.shape[1:], dtype=_np.int64)
    for i in range(W):
        t = a[i] - b_planes[i] - borrow
        borrow = (t < 0).astype(_np.int64)
        out[i] = t + (borrow << LIMB_BITS)
    return out, borrow == 0


def _cond_sub(a, mod_planes, times: int = 1):
    """Subtract ``mod`` wherever ``a >= mod``, up to ``times`` times."""
    for _ in range(times):
        d, ok = _borrow_sub(a, mod_planes.reshape(
            (-1,) + (1,) * (a.ndim - 1)))
        a = _np.where(ok, d, a)
    return a


def _conv(a, b):
    """Limb convolution of normalized planes; result is lazy (no carry).

    ``a``: (la, *s1), ``b``: (lb, *s2) with broadcastable tails.
    Safe while ``min(la, lb) < 2^15`` (48-bit products, int64 lanes).
    """
    la, lb = a.shape[0], b.shape[0]
    tail = _np.broadcast_shapes(a.shape[1:], b.shape[1:])
    out = _np.zeros((la + lb - 1,) + tail, dtype=_np.int64)
    for i in range(la):
        ai = a[i]
        for j in range(lb):
            out[i + j] += ai * b[j]
    return out


def _barrett(ctx: _LimbContext, planes, canonical: bool = True):
    """Barrett-reduce normalized planes (value < base^(2L)) mod p.

    HAC Algorithm 14.42 in radix 2^24, vectorized over the element
    axes; returns canonical (L, ...) planes.  ``canonical=False`` skips
    the trailing conditional subtractions and returns the main step's
    residue in ``[0, 3p)`` as ``L`` planes — only valid when ``3p <
    base^L`` (the lazy-NTT caller guards this); the value is exact
    modulo ``p`` either way.
    """
    L = ctx.n_limbs
    x = planes
    if x.shape[0] < 2 * L:
        padded = _np.zeros((2 * L,) + x.shape[1:], dtype=_np.int64)
        padded[: x.shape[0]] = x
        x = padded
    q1 = x[L - 1:]                                   # floor(x / b^(L-1))
    q2 = _carry(_conv(q1, ctx.mu_planes.reshape(
        (L + 1,) + (1,) * (x.ndim - 1))), 2 * L + 3)
    q3 = q2[L + 1:]                                  # floor(q2 / b^(L+1))
    # r2 = q3 * p mod b^(L+1): truncated convolution, carries kept
    # inside the window (the carry out of limb L is dropped).
    tail = x.shape[1:]
    r2 = _np.zeros((L + 1,) + tail, dtype=_np.int64)
    for i in range(min(L + 1, q3.shape[0])):
        qi = q3[i]
        for j in range(L + 1 - i):
            if j < L:
                r2[i + j] += qi * int(ctx.p_planes[j])
    for i in range(L):
        c = r2[i] >> LIMB_BITS
        r2[i] &= LIMB_MASK
        r2[i + 1] += c
    r2[L] &= LIMB_MASK
    r1 = x[: L + 1]
    r, _ok = _borrow_sub(r1, r2)                     # mod b^(L+1)
    if not canonical:
        return r[:L]
    r = _cond_sub(r, ctx.p_ext_planes, times=2)
    return r[:L]


def _np_add(ctx, a, b):
    s = _carry(a + b, ctx.n_limbs + 1)
    return _cond_sub(s, ctx.p_ext_planes)[: ctx.n_limbs]


def _np_sub(ctx, a, b):
    # a - b + p, limbwise (entries may be transiently negative).
    t = a - b + ctx.p_planes.reshape((ctx.n_limbs,) + (1,) * (a.ndim - 1))
    out = _np.empty((ctx.n_limbs + 1,) + a.shape[1:], dtype=_np.int64)
    carry = _np.zeros(a.shape[1:], dtype=_np.int64)
    for i in range(ctx.n_limbs):
        v = t[i] + carry
        carry = v >> LIMB_BITS           # arithmetic shift: floor division
        out[i] = v & LIMB_MASK
    out[ctx.n_limbs] = carry
    return _cond_sub(out, ctx.p_ext_planes)[: ctx.n_limbs]


def _np_neg(ctx, a):
    zero = _np.zeros_like(a)
    return _np_sub(ctx, zero, a)


def _np_mul(ctx, a, b):
    return _barrett(ctx, _carry(_conv(a, b), 2 * ctx.n_limbs))


def _np_scale(ctx, c: int, a):
    c_planes = _np.array(
        _int_limbs(c % ctx.modulus, ctx.n_limbs), dtype=_np.int64
    ).reshape((ctx.n_limbs,) + (1,) * (a.ndim - 1))
    return _np_mul(ctx, a, c_planes)


def _small_row_split(ctx, values):
    """Split a scalar row into single-limb ``(pos, neg)`` int64 arrays.

    Succeeds when every canonical entry ``c`` satisfies ``c < base`` or
    ``p - c < base`` (coefficients like ``±1`` and ``±2^i`` — all of
    the compiled Valid-circuit coefficient rows), so that
    ``x*c = x*pos - x*neg`` with both products single-limb-by-plane
    (lazy entries < 2^48, no limb convolution).  Returns None when any
    entry is full-width.
    """
    p = ctx.modulus
    base = 1 << LIMB_BITS
    pos = [0] * len(values)
    neg = [0] * len(values)
    for i, v in enumerate(values):
        v %= p
        if v < base:
            pos[i] = v
        elif p - v < base:
            neg[i] = p - v
        else:
            return None
    return (
        _np.array(pos, dtype=_np.int64),
        _np.array(neg, dtype=_np.int64),
    )


def _np_mul_small_row(ctx, planes, values):
    """Broadcast-multiply canonical planes by a row of *small* scalars.

    The :func:`_small_row_split` products fold through one carry and
    one Barrett pass via ``x*pos + (p << 24) - x*neg`` — the pad is 0
    mod p and exceeds any ``x*neg``, so the total stays nonnegative
    (the carry loop's arithmetic shifts absorb transiently negative
    limbs, exactly as in ``_np_sub``).  Returns None when any entry is
    full-width or the padded total would leave Barrett's ``base^(2L)``
    domain; callers then take the convolution path.
    """
    pad = ctx.modulus << LIMB_BITS
    width = -((2 * pad).bit_length() // -LIMB_BITS)
    if width > 2 * ctx.n_limbs:
        return None
    split = _small_row_split(ctx, values)
    if split is None:
        return None
    pos, neg = split
    lazy = _np.zeros((width,) + planes.shape[1:], dtype=_np.int64)
    lazy[: ctx.n_limbs] = planes * pos - planes * neg
    lazy += _np.array(_int_limbs(pad, width), dtype=_np.int64).reshape(
        (width,) + (1,) * (planes.ndim - 1)
    )
    return _barrett(ctx, _carry(lazy, width))


def _np_sum_axis(ctx, planes, axis: int):
    """Sum canonical planes along an element axis, reduced mod p."""
    n_terms = planes.shape[axis]
    limit = min(ctx.max_dot_terms, 1 << (63 - LIMB_BITS))
    total = None
    for start in range(0, n_terms, limit):
        idx = [slice(None)] * planes.ndim
        idx[axis] = slice(start, start + limit)
        lazy = planes[tuple(idx)].sum(axis=axis)
        part = _barrett(ctx, _carry(lazy, 2 * ctx.n_limbs))
        total = part if total is None else _np_add(ctx, total, part)
    return total


def _np_matvec(ctx, w_planes, m_planes):
    """Batched inner products: weights (L, K, D) x rows (L, B, D).

    Returns canonical planes (L, K, B) — ``out[k, b] = sum_d
    w[k, d] * m[b, d] mod p`` — computed as one int64 matrix product
    per limb pair with lazy (carry-free) accumulation.
    """
    L = ctx.n_limbs
    K, D = w_planes.shape[1], w_planes.shape[2]
    B = m_planes.shape[1]
    total = None
    for start in range(0, D, ctx.max_dot_terms):
        sl = slice(start, start + ctx.max_dot_terms)
        acc = _np.zeros((2 * L - 1, K, B), dtype=_np.int64)
        for i in range(L):
            wi = w_planes[i, :, sl]                  # (K, d)
            for j in range(L):
                acc[i + j] += wi @ m_planes[j, :, sl].T
        part = _barrett(ctx, _carry(acc, 2 * L))
        total = part if total is None else _np_add(ctx, total, part)
    return total


def _np_ntt(ctx, planes, root: int):
    """Radix-2 NTT over the last axis of (L, B, n) planes.

    Butterflies are *lazy* when the limb headroom allows (all shipped
    moduli): stage values live in ``[0, C*p)`` with ``C`` growing by at
    most 3 per stage — the twiddle product keeps Barrett's main-step
    residue (< 3p), sums skip the conditional subtraction, and
    differences add a flat ``3p`` instead of comparing — so each stage
    is pure convolution/carry passes with no limb comparisons at all.
    One full Barrett pass at the end canonicalizes, making the output
    bit-identical to the exact per-stage path (which remains as the
    fallback for headroom-starved moduli).
    """
    n = planes.shape[-1]
    if n == 1:
        return planes
    perm = _bit_reverse_permutation(n)
    out = planes[..., perm].copy()
    p = ctx.modulus
    L = ctx.n_limbs
    n_stages = n.bit_length() - 1
    # Lazy growth bound: inputs are canonical (C = 1); every stage adds
    # at most 3p, and the sub path needs t <= 3p, so values stay below
    # (4 + 3 * n_stages) * p — which must fit L normalized limbs.
    lazy = (4 + 3 * n_stages) * p <= (1 << (LIMB_BITS * L))
    if lazy:
        three_p = _np.array(_int_limbs(3 * p, L), dtype=_np.int64)
    length = 2
    while length <= n:
        half = length >> 1
        w_len = pow(root, n // length, p)
        tw = ctx.twiddle_planes(w_len, half)         # (L, half)
        shaped = out.reshape(out.shape[:-1] + (n // length, length))
        lo = shaped[..., :half]
        hi = shaped[..., half:]
        if half == 1:
            # Stage 1's only twiddle is w^0 = 1: t = hi, skip the
            # multiply (a full conv + Barrett over the half array).
            t = hi
        else:
            x = _carry(_conv(hi, tw.reshape(
                (L,) + (1,) * (shaped.ndim - 2) + (half,))), 2 * L)
            t = _barrett(ctx, x, canonical=not lazy)
        if lazy:
            # s = lo + t and d = lo - t + 3p, carried but never
            # compared against p; exact mod p throughout.
            s = lo + t
            d = (
                lo - t
                + three_p.reshape((L,) + (1,) * (shaped.ndim - 1))
            )
            new_lo = _np.empty_like(s)
            new_hi = _np.empty_like(d)
            carry_s = _np.zeros(s.shape[1:], dtype=_np.int64)
            carry_d = _np.zeros(d.shape[1:], dtype=_np.int64)
            for i in range(L):
                vs = s[i] + carry_s
                vd = d[i] + carry_d
                carry_s = vs >> LIMB_BITS
                carry_d = vd >> LIMB_BITS
                new_lo[i] = vs & LIMB_MASK
                new_hi[i] = vd & LIMB_MASK
        else:
            new_lo = _np_add(ctx, lo, t)
            new_hi = _np_sub(ctx, lo, t)
        shaped[..., :half] = new_lo
        shaped[..., half:] = new_hi
        length <<= 1
    if lazy:
        # One canonicalizing Barrett for the whole transform.
        out = _barrett(ctx, _carry(out, 2 * L))
    return out


def _bit_reverse_permutation(n: int) -> list[int]:
    bits = n.bit_length() - 1
    perm = [0] * n
    for i in range(n):
        perm[i] = int(format(i, f"0{bits}b")[::-1], 2) if bits else 0
    return perm


# ----------------------------------------------------------------------
# BatchVector: the public batch abstraction
# ----------------------------------------------------------------------


class BatchVector:
    """A vector — or a batch of equal-length vectors — of field elements.

    Elements are always canonical representatives in ``[0, p)``;
    every operation is exact field arithmetic, bit-for-bit equal to
    the scalar :class:`PrimeField` ops.  Shapes are 1-D ``(n,)`` or
    2-D ``(rows, n)``; elementwise operators require matching shapes.

    Construction converts from Python ints once; chains of batch ops
    stay inside the backend representation until :meth:`to_ints`.
    """

    __slots__ = ("field", "shape", "_data", "_numpy")

    def __init__(self, field, shape, data, is_numpy):
        self.field = field
        self.shape = shape
        self._data = data
        self._numpy = is_numpy

    # -- construction ---------------------------------------------------

    @classmethod
    def from_ints(
        cls,
        field: PrimeField,
        values,
        force_pure: bool | None = None,
    ) -> "BatchVector":
        """Build from a flat sequence or a sequence of equal-length rows."""
        rows = list(values)
        p = field.modulus
        if rows and isinstance(rows[0], (list, tuple)):
            width = len(rows[0])
            flat: list[int] = []
            for row in rows:
                if len(row) != width:
                    raise FieldError("ragged batch rows")
                flat.extend(row)
            shape = (len(rows), width)
        else:
            flat = list(rows)
            shape = (len(flat),)
        if use_numpy(force_pure):
            ctx = _ctx(field)
            planes = _encode_checked(ctx, flat).reshape((ctx.n_limbs,) + shape)
            return cls(field, shape, planes, True)
        flat = [v % p for v in flat]
        if len(shape) == 2:
            w = shape[1]
            data = [flat[i * w:(i + 1) * w] for i in range(shape[0])]
        else:
            data = flat
        return cls(field, shape, data, False)

    @classmethod
    def zeros(
        cls, field: PrimeField, shape, force_pure: bool | None = None
    ) -> "BatchVector":
        shape = tuple(shape) if isinstance(shape, (tuple, list)) else (shape,)
        if use_numpy(force_pure):
            ctx = _ctx(field)
            return cls(
                field, shape,
                _np.zeros((ctx.n_limbs,) + shape, dtype=_np.int64), True,
            )
        if len(shape) == 2:
            return cls(
                field, shape, [[0] * shape[1] for _ in range(shape[0])], False
            )
        return cls(field, shape, [0] * shape[0], False)

    # -- extraction -----------------------------------------------------

    def to_ints(self):
        """Back to plain Python ints (nested lists mirroring shape)."""
        if not self._numpy:
            if len(self.shape) == 2:
                return [list(r) for r in self._data]
            return list(self._data)
        flat = _decode(_ctx(self.field), self._data)
        if len(self.shape) == 2:
            w = self.shape[1]
            return [flat[i * w:(i + 1) * w] for i in range(self.shape[0])]
        return flat

    def row_ints(self, i: int) -> list[int]:
        """One row of a 2-D batch as plain Python ints."""
        if len(self.shape) != 2:
            raise FieldError("row_ints needs a 2-D batch")
        if self._numpy:
            return _decode(_ctx(self.field), self._data[:, i, :])
        return list(self._data[i])

    def column_ints(self, j: int) -> list[int]:
        """One column of a 2-D batch as plain Python ints.

        This is the batched verifier's escape hatch for per-submission
        scalars (e.g. the Beaver-triple columns): B ints decoded from
        one plane slice instead of materializing whole rows.
        """
        if len(self.shape) != 2:
            raise FieldError("column_ints needs a 2-D batch")
        if self._numpy:
            return _decode(_ctx(self.field), self._data[:, :, j])
        return [row[j] for row in self._data]

    def set_row_ints(self, i: int, values: Sequence[int]) -> None:
        """Overwrite row ``i`` of a 2-D batch with canonical ints."""
        if len(self.shape) != 2:
            raise FieldError("set_row_ints needs a 2-D batch")
        values = list(values)
        if len(values) != self.shape[1]:
            raise FieldError("row width mismatch")
        if self._numpy:
            self._data[:, i, :] = _encode_checked(_ctx(self.field), values)
        else:
            self._data[i] = [v % self.field.modulus for v in values]

    def row(self, i: int) -> "BatchVector":
        """Row ``i`` of a 2-D batch as a 1-D batch (plane view, no copy)."""
        if len(self.shape) != 2:
            raise FieldError("row needs a 2-D batch")
        shape = (self.shape[1],)
        if self._numpy:
            return BatchVector(self.field, shape, self._data[:, i, :], True)
        return BatchVector(self.field, shape, list(self._data[i]), False)

    def column(self, j: int) -> "BatchVector":
        """Column ``j`` of a 2-D batch as a 1-D batch (plane view).

        The plane-resident replacement for :meth:`column_ints`: the
        batched verifier reads its per-submission Beaver-triple columns
        this way without ever decoding them to Python ints.
        """
        if len(self.shape) != 2:
            raise FieldError("column needs a 2-D batch")
        shape = (self.shape[0],)
        if self._numpy:
            return BatchVector(self.field, shape, self._data[:, :, j], True)
        return BatchVector(
            self.field, shape, [row[j] for row in self._data], False
        )

    def take_rows(self, indices: Sequence[int]) -> "BatchVector":
        """A new batch holding the selected rows (in the given order)."""
        if len(self.shape) != 2:
            raise FieldError("take_rows needs a 2-D batch")
        indices = list(indices)
        shape = (len(indices), self.shape[1])
        if self._numpy:
            return BatchVector(
                self.field, shape, self._data[:, indices, :], True
            )
        return BatchVector(
            self.field, shape, [list(self._data[i]) for i in indices], False
        )

    def take_elements(self, indices: Sequence[int]) -> "BatchVector":
        """A new 1-D batch holding the selected elements (in order).

        The 1-D analog of :meth:`take_rows`; repeats are allowed.  The
        sharded fan-out's round merge/split runs on this: per-shard
        ``(B_k,)`` round planes gather into the global survivor order
        (and back) without decoding a single element.
        """
        if len(self.shape) != 1:
            raise FieldError("take_elements needs a 1-D batch")
        indices = list(indices)
        shape = (len(indices),)
        if self._numpy:
            return BatchVector(
                self.field, shape, self._data[:, indices], True
            )
        return BatchVector(
            self.field, shape, [self._data[i] for i in indices], False
        )

    def take_columns(self, indices: Sequence[int]) -> "BatchVector":
        """A new batch holding the selected columns (in the given order).

        The column-axis dual of :meth:`take_rows`; repeats are allowed.
        This is the compiled-circuit plan's gather primitive: every
        single-term affine form (a mul gate reading an input wire
        directly, the common case in the Figure 7 circuits) evaluates
        as one column gather over the batch's base matrix.
        """
        if len(self.shape) != 2:
            raise FieldError("take_columns needs a 2-D batch")
        indices = list(indices)
        shape = (self.shape[0], len(indices))
        if self._numpy:
            return BatchVector(
                self.field, shape, self._data[:, :, indices], True
            )
        return BatchVector(
            self.field, shape,
            [[row[j] for j in indices] for row in self._data], False,
        )

    def set_columns(
        self, indices: Sequence[int], values: "BatchVector"
    ) -> None:
        """Overwrite the selected columns of a 2-D batch in place.

        ``values`` must be a 2-D batch on the same backend with one
        column per index — how the compiled plan scatters each level's
        mul-gate outputs back into the base matrix for later levels to
        read.
        """
        if len(self.shape) != 2:
            raise FieldError("set_columns needs a 2-D batch")
        if not isinstance(values, BatchVector):
            raise FieldError("expected a BatchVector operand")
        if values.field.modulus != self.field.modulus:
            raise FieldError("field mismatch")
        if values._numpy != self._numpy:
            raise FieldError("backend mismatch between operands")
        indices = list(indices)
        if values.shape != (self.shape[0], len(indices)):
            raise FieldError("set_columns value shape mismatch")
        if self._numpy:
            self._data[:, :, indices] = values._data
        else:
            for row, vrow in zip(self._data, values._data):
                for j, v in zip(indices, vrow):
                    row[j] = v

    def rows_zero(self) -> "list[bool]":
        """Per-row all-zero test of a 2-D batch.

        Row ``i`` is True iff every element in it is zero — the batched
        validity verdict over a batch of assertion-wire values, computed
        as one limb comparison without decoding (canonical
        representatives make zero the unique all-limbs-zero encoding).
        A zero-width batch is vacuously all-valid.
        """
        if len(self.shape) != 2:
            raise FieldError("rows_zero needs a 2-D batch")
        if self.shape[1] == 0:
            return [True] * self.shape[0]
        if self._numpy:
            return (~(self._data != 0).any(axis=(0, 2))).tolist()
        return [all(v == 0 for v in row) for row in self._data]

    def slice_columns(self, width: int) -> "BatchVector":
        """The first ``width`` columns (the Aggregate step's truncation)."""
        if width > self.shape[-1]:
            raise FieldError("slice width larger than batch width")
        shape = self.shape[:-1] + (width,)
        if self._numpy:
            return BatchVector(self.field, shape, self._data[..., :width], True)
        if len(self.shape) == 2:
            return BatchVector(
                self.field, shape, [row[:width] for row in self._data], False
            )
        return BatchVector(self.field, shape, self._data[:width], False)

    @property
    def backend(self) -> str:
        return "numpy" if self._numpy else "pure"

    @property
    def force_pure(self) -> "bool | None":
        """A ``force_pure`` argument that reproduces this batch's backend."""
        return False if self._numpy else True

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:
        return (
            f"BatchVector({self.field.name}, shape={self.shape}, "
            f"backend={self.backend})"
        )

    # -- internals ------------------------------------------------------

    def _like(self, data) -> "BatchVector":
        return BatchVector(self.field, self.shape, data, self._numpy)

    def _check(self, other: "BatchVector") -> None:
        if not isinstance(other, BatchVector):
            raise FieldError("expected a BatchVector operand")
        if other.field.modulus != self.field.modulus:
            raise FieldError("field mismatch")
        if other.shape != self.shape:
            raise FieldError(f"shape mismatch: {self.shape} vs {other.shape}")
        if other._numpy != self._numpy:
            raise FieldError("backend mismatch between operands")

    def _zip_pure(self, other, op):
        f = self.field
        if len(self.shape) == 2:
            return [
                [op(f, x, y) for x, y in zip(r1, r2)]
                for r1, r2 in zip(self._data, other._data)
            ]
        return [op(f, x, y) for x, y in zip(self._data, other._data)]

    # -- elementwise ops ------------------------------------------------

    def __add__(self, other: "BatchVector") -> "BatchVector":
        self._check(other)
        if self._numpy:
            return self._like(_np_add(_ctx(self.field), self._data, other._data))
        return self._like(self._zip_pure(other, PrimeField.add))

    def __sub__(self, other: "BatchVector") -> "BatchVector":
        self._check(other)
        if self._numpy:
            return self._like(_np_sub(_ctx(self.field), self._data, other._data))
        return self._like(self._zip_pure(other, PrimeField.sub))

    def __mul__(self, other: "BatchVector") -> "BatchVector":
        self._check(other)
        if self._numpy:
            return self._like(_np_mul(_ctx(self.field), self._data, other._data))
        return self._like(self._zip_pure(other, PrimeField.mul))

    def __neg__(self) -> "BatchVector":
        if self._numpy:
            return self._like(_np_neg(_ctx(self.field), self._data))
        f = self.field
        if len(self.shape) == 2:
            return self._like([f.vec_neg(r) for r in self._data])
        return self._like(f.vec_neg(self._data))

    def scale(self, c: int) -> "BatchVector":
        """Multiply every element by the scalar ``c``."""
        if self._numpy:
            return self._like(_np_scale(_ctx(self.field), c, self._data))
        f = self.field
        if len(self.shape) == 2:
            return self._like([f.vec_scale(c, r) for r in self._data])
        return self._like(f.vec_scale(c, self._data))

    def add_scalar(self, c: int) -> "BatchVector":
        """Add the scalar ``c`` to every element.

        The leader-only affine constants of the batched verification
        functionals fold in through this — one broadcast limb add, no
        per-submission Python loop.
        """
        c %= self.field.modulus
        if c == 0:
            return self
        if self._numpy:
            ctx = _ctx(self.field)
            c_planes = _np.array(
                _int_limbs(c, ctx.n_limbs), dtype=_np.int64
            ).reshape((ctx.n_limbs,) + (1,) * len(self.shape))
            return self._like(_np_add(ctx, self._data, c_planes))
        f = self.field
        if len(self.shape) == 2:
            return self._like(
                [[f.add(v, c) for v in row] for row in self._data]
            )
        return self._like([f.add(v, c) for v in self._data])

    def mul_row(self, values: Sequence[int]) -> "BatchVector":
        """Multiply every row elementwise by the same length-n vector.

        The batched prover's twist step (odd-point evaluation of h
        without a double-size NTT) multiplies every coefficient row by
        one shared power vector — a broadcast plane multiply, no
        per-row Python loop.  Rows whose entries are all small (or
        negated-small) mod p — every compiled Valid-circuit coefficient
        row — skip the limb convolution entirely
        (:func:`_np_mul_small_row`); full-width rows like the NTT twist
        powers take the general path.
        """
        if len(self.shape) != 2:
            raise FieldError("mul_row needs a 2-D batch")
        values = list(values)
        if len(values) != self.shape[1]:
            raise FieldError("row width mismatch in mul_row")
        if self._numpy:
            ctx = _ctx(self.field)
            fast = _np_mul_small_row(ctx, self._data, values)
            if fast is not None:
                return self._like(fast)
            row_planes = _encode_checked(ctx, values).reshape(
                ctx.n_limbs, 1, self.shape[1]
            )
            return self._like(_np_mul(ctx, self._data, row_planes))
        f = self.field
        return self._like(
            [
                [f.mul(x, v) for x, v in zip(row, values)]
                for row in self._data
            ]
        )

    def add_row(self, values: Sequence[int]) -> "BatchVector":
        """Add the same length-n vector to every row.

        The compiled plans' affine-gather schedules finish with this —
        the ubiquitous ``x - 1`` mul input of one-hot and bit-check
        circuits is a column gather plus one broadcast row add: a lazy
        limb add, one carry, one conditional subtraction; no Barrett,
        no convolution.
        """
        if len(self.shape) != 2:
            raise FieldError("add_row needs a 2-D batch")
        values = list(values)
        if len(values) != self.shape[1]:
            raise FieldError("row width mismatch in add_row")
        if self._numpy:
            ctx = _ctx(self.field)
            row_planes = _encode_checked(ctx, values).reshape(
                ctx.n_limbs, 1, self.shape[1]
            )
            return self._like(_np_add(ctx, self._data, row_planes))
        f = self.field
        return self._like(
            [
                [f.add(x, v) for x, v in zip(row, values)]
                for row in self._data
            ]
        )

    def is_zero(self) -> "list[bool]":
        """Per-element zero test of a 1-D batch.

        Canonical representatives make this a pure limb comparison —
        the batched accept/reject decision never decodes the combined
        round-2 planes to ints.
        """
        if len(self.shape) != 1:
            raise FieldError("is_zero needs a 1-D batch")
        if self._numpy:
            return [
                not nz for nz in (self._data != 0).any(axis=0).tolist()
            ]
        return [v == 0 for v in self._data]

    # -- reductions -----------------------------------------------------

    def dot(self, weights: Sequence[int]):
        """Inner product of each row with ``weights``.

        2-D batches return ``list[int]`` (one per row); 1-D vectors
        return a single ``int``.
        """
        if len(self.shape) == 2:
            if self._numpy:
                ctx = _ctx(self.field)
                w = _encode_checked(ctx, list(weights))
                out = _np_matvec(ctx, w[:, None, :], self._data)  # (L,1,B)
                return _decode(ctx, out[:, 0, :])
            return [
                self.field.inner_product(weights, row) for row in self._data
            ]
        if self._numpy:
            ctx = _ctx(self.field)
            w = _encode_checked(ctx, list(weights))
            out = _np_matvec(ctx, w[:, None, :], self._data[:, None, :])
            return _decode(ctx, out[:, 0, :])[0]
        return self.field.inner_product(weights, self._data)

    def sum_rows(self) -> "BatchVector":
        """Column-wise sum of a 2-D batch (the Aggregate step)."""
        if len(self.shape) != 2:
            raise FieldError("sum_rows needs a 2-D batch")
        if self._numpy:
            data = _np_sum_axis(_ctx(self.field), self._data, axis=1)
            return BatchVector(self.field, (self.shape[1],), data, True)
        return BatchVector(
            self.field, (self.shape[1],),
            self.field.vec_sum(self._data), False,
        )

    # -- structure ------------------------------------------------------

    def pad_rows(self, width: int) -> "BatchVector":
        """Zero-pad the last axis out to ``width`` columns."""
        old = self.shape[-1]
        if width < old:
            raise FieldError("pad width smaller than current width")
        if width == old:
            return self
        shape = self.shape[:-1] + (width,)
        if self._numpy:
            data = _np.zeros(
                (self._data.shape[0],) + shape, dtype=_np.int64
            )
            data[..., :old] = self._data
            return BatchVector(self.field, shape, data, True)
        if len(self.shape) == 2:
            data = [row + [0] * (width - old) for row in self._data]
        else:
            data = self._data + [0] * (width - old)
        return BatchVector(self.field, shape, data, False)

    # -- NTT ------------------------------------------------------------

    def ntt(self, root: int) -> "BatchVector":
        """Forward NTT along the last axis (length must be a power of 2)."""
        n = self.shape[-1]
        if n & (n - 1) != 0:
            raise FieldError(f"NTT size must be a power of two, got {n}")
        if self._numpy:
            planes = self._data if len(self.shape) == 2 else \
                self._data[:, None, :]
            out = _np_ntt(_ctx(self.field), planes, root)
            if len(self.shape) == 1:
                out = out[:, 0, :]
            return self._like(out)
        from repro.field.ntt import ntt as _scalar_ntt

        if len(self.shape) == 2:
            return self._like(
                [_scalar_ntt(self.field, row, root) for row in self._data]
            )
        return self._like(_scalar_ntt(self.field, self._data, root))

    def intt(self, root: int) -> "BatchVector":
        """Inverse NTT along the last axis."""
        n = self.shape[-1]
        p = self.field.modulus
        out = self.ntt(pow(root, -1, p))
        return out.scale(pow(n, -1, p))


def butterfly(
    lo: BatchVector, hi: BatchVector, twiddle: int
) -> tuple[BatchVector, BatchVector]:
    """One radix-2 NTT butterfly over whole vectors:
    ``(lo + w*hi, lo - w*hi)`` elementwise."""
    t = hi.scale(twiddle)
    return lo + t, lo - t


# ----------------------------------------------------------------------
# Wire-byte codecs and ingest kernels: big-endian wire bodies <-> limb
# planes with pure numpy (3 wire bytes per 24-bit limb), plus the
# vectorized PRG rejection sampler and batch assembly.
# ----------------------------------------------------------------------


def _bytes_to_words(ctx: _LimbContext, arr):
    """uint8 array ``(..., width)`` of big-endian elements -> u32 limbs.

    ``width`` is the per-element byte width (``field.encoded_size`` or
    the PRG candidate width); always <= 3L because any multiple of 24
    covering ``bits`` also covers the byte-rounded width.  Returns a
    ``(..., L)`` uint32 array with the *least-significant limb first*
    (matching the plane order of :func:`_words_to_planes`).

    Each three-byte limb is embedded in the low bytes of a big-endian
    four-byte word and reinterpreted via an ndarray view — two byte
    copies, no per-byte integer arithmetic (the shift-or formulation
    this replaces spent most of ingest widening every wire byte to
    int64 before combining).
    """
    L = ctx.n_limbs
    width = arr.shape[-1]
    full = _np.zeros(arr.shape[:-1] + (L, 4), dtype=_np.uint8)
    flat = full.reshape(arr.shape[:-1] + (4 * L,))
    # big-endian groups: limb g (most-significant first) occupies word
    # bytes [4g+1, 4g+4); the element's bytes right-align into them.
    pad = 3 * L - width
    for g in range(L):
        lo = max(0, 3 * g - pad)
        hi = 3 * (g + 1) - pad
        if hi <= 0:
            continue
        flat[..., 4 * g + 4 - (hi - lo): 4 * g + 4] = arr[..., lo:hi]
    words = full.view(_np.dtype(">u4"))[..., 0]
    return words[..., ::-1]


def _words_to_planes(words):
    """``(..., L)`` u32 limb words -> ``(L, ...)`` int64 planes.

    ``order="C"`` matters: the moveaxis view is limb-innermost, and a
    layout-preserving copy would leave every plane strided — downstream
    matmuls run ~2x slower on such planes.
    """
    return _np.moveaxis(words, -1, 0).astype(_np.int64, order="C")


def _words_ge_modulus(ctx: _LimbContext, words):
    """Vectorized ``value >= p`` on ``(..., L)`` u32 limb words.

    Lexicographic compare from the most-significant limb, with an
    early exit once no candidate is still tied with ``p`` — for the
    shipped moduli that is almost always after one or two limbs, so
    the compare costs ~2 passes instead of ``2L``.
    """
    L = ctx.n_limbs
    gt = None
    eq = None
    for i in range(L - 1, -1, -1):
        limb = words[..., i]
        pi = _np.uint32(ctx.p_planes[i])
        if gt is None:
            gt = limb > pi
            eq = limb == pi
        else:
            gt |= eq & (limb > pi)
            eq &= limb == pi
        if not eq.any():
            return gt
    return gt | eq


def _bytes_to_planes(ctx: _LimbContext, arr):
    """uint8 array ``(..., width)`` of big-endian elements -> planes.

    Returns ``(L, ...)`` int64 planes; each group of three bytes is one
    limb (see :func:`_bytes_to_words`).
    """
    return _words_to_planes(_bytes_to_words(ctx, arr))


def _planes_to_bytes(ctx: _LimbContext, planes, width: int):
    """Canonical ``(L, ...)`` planes -> uint8 array ``(..., width)``.

    Inverse of :func:`_bytes_to_planes`; canonical values never carry
    bits above ``width`` bytes, so the high pad is provably zero.
    """
    L = ctx.n_limbs
    grouped = _np.empty(planes.shape[1:] + (L, 3), dtype=_np.uint8)
    for g in range(L):
        limb = planes[L - 1 - g]
        grouped[..., g, 0] = (limb >> 16) & 0xFF
        grouped[..., g, 1] = (limb >> 8) & 0xFF
        grouped[..., g, 2] = limb & 0xFF
    flat = grouped.reshape(planes.shape[1:] + (3 * L,))
    return flat[..., 3 * L - width:]


def _out_of_range_error(row: int, element: int) -> FieldError:
    """A :class:`FieldError` carrying the offending batch position.

    ``batch_row``/``batch_element`` let callers that decoded a *subset*
    of a larger batch (e.g. the EXPLICIT packets of a mixed upload
    batch) remap the position to their own indexing before reporting.
    """
    exc = FieldError(
        f"encoded value out of range at batch row {row}, element {element}"
    )
    exc.batch_row = row
    exc.batch_element = element
    return exc


def decode_bytes_batch(
    field: PrimeField,
    bodies: Sequence[bytes],
    force_pure: bool | None = None,
    check: bool = True,
) -> BatchVector:
    """Decode equal-length wire bodies straight into a ``(B, n)`` batch.

    Each body is the fixed-width big-endian element vector the wire
    format ships (``field.encode_vector`` layout).  On the numpy
    backend the bytes land in limb planes without any per-element
    ``int.from_bytes`` — one reshape plus L shift-or passes.

    ``check=True`` (the default, matching ``field.decode_vector``)
    rejects elements >= p with a :class:`FieldError` naming the batch
    position; ``check=False`` Barrett-reduces them instead, which is
    what the unchecked PRG candidate path wants.
    """
    bodies = list(bodies)
    size = field.encoded_size
    if not bodies:
        return BatchVector.zeros(field, (0, 0), force_pure)
    if len(bodies[0]) % size != 0:
        raise FieldError("vector encoding is not a whole number of elements")
    n = len(bodies[0]) // size
    for body in bodies:
        if len(body) != n * size:
            raise FieldError("ragged bodies in byte batch")
    if not use_numpy(force_pure):
        p = field.modulus
        rows = []
        for r, body in enumerate(bodies):
            row = []
            for i in range(0, len(body), size):
                value = int.from_bytes(body[i : i + size], "big")
                if value >= p:
                    if check:
                        raise _out_of_range_error(r, i // size)
                    value %= p
                row.append(value)
            rows.append(row)
        return BatchVector(field, (len(bodies), n), rows, False)
    ctx = _ctx(field)
    arr = _np.frombuffer(b"".join(bodies), dtype=_np.uint8)
    words = _bytes_to_words(ctx, arr.reshape(len(bodies), n, size))
    ge_p = _words_ge_modulus(ctx, words)
    if bool(ge_p.any()):
        if check:
            r, c = (int(v) for v in _np.argwhere(ge_p)[0])
            raise _out_of_range_error(r, c)
        return BatchVector(
            field, (len(bodies), n),
            _barrett(ctx, _words_to_planes(words)), True,
        )
    return BatchVector(field, (len(bodies), n), _words_to_planes(words), True)


def encode_bytes_batch(
    field: PrimeField,
    batch: "BatchVector | Sequence[Sequence[int]]",
    force_pure: bool | None = None,
) -> list[bytes]:
    """Encode a 2-D batch back to one wire body per row.

    Inverse of :func:`decode_bytes_batch`: each returned ``bytes`` is
    bit-identical to ``field.encode_vector`` of that row.
    """
    if not isinstance(batch, BatchVector):
        batch = BatchVector.from_ints(field, list(batch), force_pure)
    if len(batch.shape) != 2:
        raise FieldError("encode_bytes_batch needs a 2-D batch")
    if not batch._numpy:
        # repro: allow(plane-discipline) - pure backend stores int rows;
        # there is no plane blob to slice, so per-row encode is the path
        return [field.encode_vector(row) for row in batch._data]
    ctx = _ctx(field)
    size = field.encoded_size
    flat = _planes_to_bytes(ctx, batch._data, size)
    B = batch.shape[0]
    blob = _np.ascontiguousarray(flat).reshape(B, -1)
    return [blob[b].tobytes() for b in range(B)]


def rejection_sample_batch(
    field: PrimeField,
    byte_rows: Sequence[bytes],
    length: int,
) -> tuple[BatchVector, list[int]]:
    """Vectorized PRG rejection sampling (numpy backend only).

    Each row of ``byte_rows`` is a run of fixed-width big-endian
    candidate windows from one XOF stream.  Candidates are masked to
    the modulus bit width and accepted where ``< p`` — exactly the
    scalar sampler's rule, so survivors are bit-identical to
    :func:`repro.sharing.prg.expand_seed` on the same stream.  Returns
    the ``(B, length)`` batch plus the indices of rows whose byte run
    held fewer than ``length`` survivors (left zero-filled; the caller
    retries those through the scalar sampler).
    """
    if _np is None:
        raise FieldError("rejection_sample_batch needs the numpy backend")
    ctx = _ctx(field)
    size = field.encoded_size
    B = len(byte_rows)
    if B == 0 or length == 0:
        out = _np.zeros((ctx.n_limbs, B, length), dtype=_np.int64)
        return BatchVector(field, (B, length), out, True), []
    n_cand = len(byte_rows[0]) // size
    arr = _np.frombuffer(b"".join(byte_rows), dtype=_np.uint8)
    arr = arr.reshape(B, n_cand, size)
    mask_value = (1 << field.bits) - 1
    if size <= 16:
        # Fast acceptance: each candidate as two big-endian u64 words.
        # Only survivors are widened to limb planes, so ~1/accept_rate
        # of the limb-split work disappears.
        wide = _np.empty((B, n_cand, 16), dtype=_np.uint8)
        wide[..., : 16 - size] = 0
        wide[..., 16 - size:] = arr
        halves = wide.view(_np.dtype(">u8"))           # (B, n_cand, 2)
        hi = halves[..., 0]
        lo = halves[..., 1]
        hi_mask = _np.uint64(mask_value >> 64)
        lo_mask = _np.uint64(mask_value & ((1 << 64) - 1))
        if int(hi_mask) != (1 << 64) - 1:
            hi = hi & hi_mask
        if int(lo_mask) != (1 << 64) - 1:
            lo = lo & lo_mask
        p_hi = _np.uint64(field.modulus >> 64)
        p_lo = _np.uint64(field.modulus & ((1 << 64) - 1))
        accept = (hi < p_hi) | ((hi == p_hi) & (lo < p_lo))
    else:
        words_all = _bytes_to_words(ctx, arr)
        mask = _np.array(
            _int_limbs(mask_value, ctx.n_limbs), dtype=_np.uint32
        )
        if int((mask != LIMB_MASK).sum()):
            words_all = words_all & mask
        accept = ~_words_ge_modulus(ctx, words_all)    # (B, n_cand)
    short = accept.sum(axis=1) < length
    short_rows = [int(b) for b in _np.flatnonzero(short)]
    # Stable argsort on the reject flags gathers each row's accepted
    # candidate indices, in stream order, into the first `length`
    # positions — the whole batch's selection in one C-level pass.
    order = _np.argsort(~accept, axis=1, kind="stable")[:, :length]
    if size <= 16:
        # Gather survivors as u64 halves (an order of magnitude fewer
        # elements than a per-byte gather), re-view as bytes, and widen
        # only them to limb words.
        chosen = _np.take_along_axis(halves, order[:, :, None], axis=1)
        chosen_bytes = _np.ascontiguousarray(chosen).view(_np.uint8)
        chosen_bytes = chosen_bytes.reshape(B, length, 16)[..., 16 - size:]
        words = _bytes_to_words(ctx, chosen_bytes)     # survivors only
        limb_mask = _int_limbs(mask_value, ctx.n_limbs)
        for i, mask_limb in enumerate(limb_mask):
            if mask_limb != LIMB_MASK:
                words[..., i] = words[..., i] & _np.uint32(mask_limb)
    else:
        words = _np.take_along_axis(
            words_all, order[:, :, None], axis=1
        )
    planes = _words_to_planes(words)                   # (L, B, length)
    if short_rows:
        planes[:, short, :] = 0
    return BatchVector(field, (B, length), planes, True), short_rows


def assemble_rows(
    field: PrimeField,
    sources: Sequence["tuple[BatchVector, int] | Sequence[int]"],
    force_pure: bool | None = None,
) -> BatchVector:
    """Stack heterogeneous row sources into one ``(B, n)`` batch.

    Each source is either a ``(BatchVector, row_index)`` pair — the row
    planes are copied, never re-encoded through Python ints — or a
    plain ``Sequence[int]`` row (the scalar-fallback seam).  This is
    how a server merges SEED-expanded and EXPLICIT-decoded packets
    into the single share matrix that batched verification consumes.
    """
    B = len(sources)
    if B == 0:
        return BatchVector.zeros(field, (0, 0), force_pure)
    first = sources[0]
    # Zero-copy fast path: every source is row i of the same batch, in
    # order, covering it exactly — the batch *is* the share matrix.
    if (
        isinstance(first, tuple)
        and first[0].shape[0] == B
        and first[0].backend == backend_name(force_pure)
        and all(
            isinstance(src, tuple) and src[0] is first[0] and src[1] == j
            for j, src in enumerate(sources)
        )
    ):
        return first[0]
    width = first[0].shape[-1] if isinstance(first, tuple) else len(first)
    if use_numpy(force_pure):
        ctx = _ctx(field)
        out = _np.empty((ctx.n_limbs, B, width), dtype=_np.int64)
        for j, src in enumerate(sources):
            if isinstance(src, tuple):
                bv, r = src
                if bv.shape[-1] != width:
                    raise FieldError("row width mismatch in assemble_rows")
                if bv._numpy:
                    out[:, j, :] = bv._data[:, r, :]
                else:
                    out[:, j, :] = _encode_checked(ctx, list(bv._data[r]))
            else:
                row = list(src)
                if len(row) != width:
                    raise FieldError("row width mismatch in assemble_rows")
                out[:, j, :] = _encode_checked(ctx, row)
        return BatchVector(field, (B, width), out, True)
    rows = []
    for src in sources:
        # repro: allow(plane-discipline) - pure fallback: sources mix
        # batches and raw rows, so assembly goes through ints by design
        row = src[0].row_ints(src[1]) if isinstance(src, tuple) else list(src)
        if len(row) != width:
            raise FieldError("row width mismatch in assemble_rows")
        rows.append(row)
    return BatchVector.from_ints(field, rows, force_pure)


def interleave_columns(even: BatchVector, odd: BatchVector) -> BatchVector:
    """Merge two ``(B, n)`` batches into ``(B, 2n)``, alternating columns.

    ``out[:, 2j] = even[:, j]`` and ``out[:, 2j + 1] = odd[:, j]`` —
    how the batched prover assembles h over the double domain from its
    even (free) and odd (twisted-NTT) halves without decoding planes.
    """
    if len(even.shape) != 2 or even.shape != odd.shape:
        raise FieldError("interleave_columns needs matching 2-D batches")
    if even._numpy != odd._numpy:
        raise FieldError("backend mismatch between operands")
    B, n = even.shape
    if even._numpy:
        out = _np.empty(
            (even._data.shape[0], B, 2 * n), dtype=_np.int64
        )
        out[..., 0::2] = even._data
        out[..., 1::2] = odd._data
        return BatchVector(even.field, (B, 2 * n), out, True)
    rows = [
        [x for pair in zip(er, orow) for x in pair]
        for er, orow in zip(even._data, odd._data)
    ]
    return BatchVector(even.field, (B, 2 * n), rows, False)


def concat_columns(
    field: PrimeField,
    parts: "Sequence[BatchVector | Sequence[Sequence[int]]]",
    force_pure: bool | None = None,
) -> BatchVector:
    """Stack 2-D parts side by side into one ``(B, sum-of-widths)`` batch.

    The column-axis dual of :func:`assemble_rows`: each part is either a
    2-D :class:`BatchVector` (its limb planes are copied directly, never
    decoded through Python ints) or a sequence of ``B`` equal-length int
    rows (encoded once).  The batched client prover assembles the
    ``x || f0 g0 || h || a b c`` submission matrix this way — the AFE
    encodings and the per-submission proof scalars are Python ints by
    nature, while the bulky ``h`` evaluations arrive as planes from the
    batch NTT and join without an int crossing.
    """
    parts = list(parts)
    if not parts:
        raise FieldError("concat_columns needs at least one part")
    widths: list[int] = []
    n_rows: int | None = None
    for part in parts:
        if isinstance(part, BatchVector):
            if len(part.shape) != 2:
                raise FieldError("concat_columns needs 2-D parts")
            rows, width = part.shape
        else:
            rows = len(part)
            width = len(part[0]) if rows else 0
            for row in part:
                if len(row) != width:
                    raise FieldError("ragged rows in concat_columns part")
        if n_rows is None:
            n_rows = rows
        elif rows != n_rows:
            raise FieldError(
                f"row-count mismatch in concat_columns: {rows} vs {n_rows}"
            )
        widths.append(width)
    total = sum(widths)
    if use_numpy(force_pure):
        ctx = _ctx(field)
        out = _np.zeros((ctx.n_limbs, n_rows, total), dtype=_np.int64)
        col = 0
        for part, width in zip(parts, widths):
            if width == 0:
                continue
            if isinstance(part, BatchVector) and part._numpy:
                out[:, :, col:col + width] = part._data
            else:
                rows = part._data if isinstance(part, BatchVector) else part
                flat = [v for row in rows for v in row]
                out[:, :, col:col + width] = _encode_checked(
                    ctx, flat
                ).reshape(ctx.n_limbs, n_rows, width)
            col += width
        return BatchVector(field, (n_rows, total), out, True)
    p = field.modulus
    rows_out: list[list[int]] = [[] for _ in range(n_rows)]
    for part in parts:
        if isinstance(part, BatchVector):
            # repro: allow(plane-discipline) - pure fallback: one
            # materialization per *part*, not per submission row
            for i, row in enumerate(part.to_ints()):
                rows_out[i].extend(row)
        else:
            for i, row in enumerate(part):
                rows_out[i].extend(v % p for v in row)
    return BatchVector(field, (n_rows, total), rows_out, False)


def concat_vectors(
    field: PrimeField,
    parts: "Sequence[BatchVector]",
    force_pure: bool | None = None,
) -> BatchVector:
    """Concatenate 1-D batches along the batch axis into one ``(n,)``.

    The 1-D analog of :func:`stack_rows`, but *backend-normalizing*:
    parts may mix backends (a tiny shard's round planes drop to the
    pure backend under the tiny-batch heuristic while its siblings stay
    numpy), and the result lands on the backend ``force_pure`` resolves
    to — numpy parts copy planes, pure parts encode once.
    """
    parts = list(parts)
    for part in parts:
        if not isinstance(part, BatchVector) or len(part.shape) != 1:
            raise FieldError("concat_vectors needs 1-D BatchVector parts")
        if part.field.modulus != field.modulus:
            raise FieldError("field mismatch in concat_vectors")
    n = sum(part.shape[0] for part in parts)
    if use_numpy(force_pure):
        ctx = _ctx(field)
        out = _np.empty((ctx.n_limbs, n), dtype=_np.int64)
        col = 0
        for part in parts:
            width = part.shape[0]
            if width == 0:
                continue
            if part._numpy:
                out[:, col:col + width] = part._data
            else:
                out[:, col:col + width] = _encode_checked(
                    ctx, list(part._data)
                )
            col += width
        return BatchVector(field, (n,), out, True)
    flat: list[int] = []
    for part in parts:
        # repro: allow(plane-discipline) - pure fallback: parts are 1-D
        # int lists already; one materialization per part
        flat.extend(part.to_ints())
    return BatchVector(field, (n,), flat, False)


def stack_rows(parts: "Sequence[BatchVector]") -> BatchVector:
    """Stack 2-D batches on top of each other along the row axis.

    The row-axis dual of :func:`concat_columns` for plane parts: all
    parts must share width and backend, and their limb planes are
    copied directly (never decoded).  The batched prover stacks the
    assembled f-rows on top of the g-rows this way to ride one
    ``(2B, N)`` NTT pair.
    """
    parts = list(parts)
    if not parts:
        raise FieldError("stack_rows needs at least one part")
    width = None
    is_numpy = parts[0]._numpy
    for part in parts:
        if not isinstance(part, BatchVector) or len(part.shape) != 2:
            raise FieldError("stack_rows needs 2-D BatchVector parts")
        if width is None:
            width = part.shape[1]
        elif part.shape[1] != width:
            raise FieldError(
                f"width mismatch in stack_rows: {part.shape[1]} vs {width}"
            )
        if part._numpy != is_numpy:
            raise FieldError("backend mismatch between stack_rows parts")
    n_rows = sum(part.shape[0] for part in parts)
    if is_numpy:
        data = _np.concatenate([part._data for part in parts], axis=1)
        return BatchVector(parts[0].field, (n_rows, width), data, True)
    rows = [list(row) for part in parts for row in part._data]
    return BatchVector(parts[0].field, (n_rows, width), rows, False)


def segment_sum_columns(
    batch: BatchVector, offsets: Sequence[int]
) -> BatchVector:
    """Field-sum contiguous column segments: ``(B, nnz) -> (B, n_out)``.

    Output column ``j`` is the sum of input columns
    ``offsets[j]:offsets[j+1]`` mod p; ``offsets`` is a CSR-style
    monotone index list with a final sentinel equal to the input width,
    and every segment must be non-empty (``np.add.reduceat`` would
    silently misbehave on empty segments, so they are rejected — the
    compiled-circuit plan pads empty affine forms with an explicit zero
    term instead).  On numpy this is one ``reduceat`` per limb plane
    with lazy accumulation; segments longer than the lazy-sum safety
    limit (never reached by real circuits) fall back to per-segment
    chunked sums.
    """
    if len(batch.shape) != 2:
        raise FieldError("segment_sum_columns needs a 2-D batch")
    offsets = list(offsets)
    if len(offsets) < 1 or offsets[0] != 0 or offsets[-1] != batch.shape[1]:
        raise FieldError("segment offsets must span the batch width")
    n_out = len(offsets) - 1
    lengths = [offsets[i + 1] - offsets[i] for i in range(n_out)]
    if any(length <= 0 for length in lengths):
        raise FieldError("segment_sum_columns segments must be non-empty")
    shape = (batch.shape[0], n_out)
    if batch._numpy:
        ctx = _ctx(batch.field)
        # Lazy per-limb sums of S canonical values stay exact while
        # S * 2^24 < 2^63 (int64 lanes) and S * p < base^(2L)
        # (Barrett's domain); max_dot_terms is a stricter bound than
        # either, so reuse it as the guard.
        limit = min(ctx.max_dot_terms, 1 << (63 - LIMB_BITS))
        if max(lengths) <= limit:
            lazy = _np.add.reduceat(batch._data, offsets[:-1], axis=2)
            data = _barrett(ctx, _carry(lazy, 2 * ctx.n_limbs))
        else:
            cols = [
                _np_sum_axis(
                    ctx, batch._data[:, :, offsets[i]:offsets[i + 1]], axis=2
                )
                for i in range(n_out)
            ]
            data = _np.stack(cols, axis=2)
        return BatchVector(batch.field, shape, data, True)
    p = batch.field.modulus
    rows = [
        [
            sum(row[offsets[i]:offsets[i + 1]]) % p
            for i in range(n_out)
        ]
        for row in batch._data
    ]
    return BatchVector(batch.field, shape, rows, False)


def sparse_affine_columns(
    base: BatchVector,
    srcs: Sequence[int],
    coeffs: Sequence[int],
    offsets: Sequence[int],
) -> BatchVector:
    """Fused sparse-affine apply: ``out[:, j] = sum_i c_i * base[:, s_i]``.

    The compiled plans' general schedule — gather the ``srcs`` columns
    of a ``(B, n_base)`` batch, scale by the coefficient row, field-sum
    each CSR segment ``offsets[j]:offsets[j+1]`` — as one kernel with a
    single modular reduction.  When every coefficient is small or
    negated-small mod p (every real Valid circuit: ``±1``/``±2^i``
    rows) and segments fit the int64 lazy headroom, the nnz-wide
    intermediate never sees a carry: two broadcast multiplies on the
    gathered planes, one ``reduceat`` per limb, then one Barrett pass
    on the narrow ``(B, n_out)`` result — per-segment ``S_j * (p<<24)``
    pads keep the signed lazy totals nonnegative exactly as in
    :func:`_np_mul_small_row`.  Full-width coefficients or oversized
    segments fall back to the exact gather / ``mul_row`` /
    :func:`segment_sum_columns` pipeline.
    """
    if len(base.shape) != 2:
        raise FieldError("sparse_affine_columns needs a 2-D batch")
    srcs = list(srcs)
    coeffs = list(coeffs)
    offsets = list(offsets)
    if len(srcs) != len(coeffs):
        raise FieldError("srcs/coeffs length mismatch")
    if len(offsets) < 1 or offsets[0] != 0 or offsets[-1] != len(srcs):
        raise FieldError("segment offsets must span the term list")
    n_out = len(offsets) - 1
    lengths = [offsets[i + 1] - offsets[i] for i in range(n_out)]
    if any(length <= 0 for length in lengths):
        raise FieldError("sparse_affine_columns segments must be non-empty")
    if base._numpy:
        ctx = _ctx(base.field)
        L = ctx.n_limbs
        B = base.shape[0]
        pad = ctx.modulus << LIMB_BITS
        max_len = max(lengths) if lengths else 1
        # Lazy headroom: S products of magnitude < 2^48 plus the pad
        # limbs must stay inside int64 lanes, and the padded segment
        # total 2 * S * (p << 24) inside Barrett's base^(2L) domain.
        width = -((2 * max_len * pad).bit_length() // -LIMB_BITS)
        split = (
            _small_row_split(ctx, coeffs)
            if max_len <= (1 << (62 - 2 * LIMB_BITS)) and width <= 2 * L
            else None
        )
        if split is not None:
            pos, neg = split
            gathered = base._data[:, :, srcs]
            terms = gathered * pos - gathered * neg
            lazy = _np.add.reduceat(terms, offsets[:-1], axis=2)
            widened = _np.zeros((width, B, n_out), dtype=_np.int64)
            widened[:L] = lazy
            pads = _np.array(
                [_int_limbs(length * pad, width) for length in lengths],
                dtype=_np.int64,
            ).T.reshape(width, 1, n_out)
            widened += pads
            return BatchVector(
                base.field,
                (B, n_out),
                _barrett(ctx, _carry(widened, width)),
                True,
            )
        out = base.take_columns(srcs)
        if any(c != 1 for c in coeffs):
            out = out.mul_row(coeffs)
        return segment_sum_columns(out, offsets)
    p = base.field.modulus
    rows = [
        [
            sum(
                row[srcs[i]] * coeffs[i]
                for i in range(offsets[j], offsets[j + 1])
            )
            % p
            for j in range(n_out)
        ]
        for row in base._data
    ]
    return BatchVector(base.field, (base.shape[0], n_out), rows, False)


def signed_delta_batch(
    field: PrimeField,
    positives,
    negatives,
    force_pure: bool | None = None,
) -> BatchVector:
    """``(positives - negatives) mod p`` as a 1-D batch, vectorized.

    ``positives``/``negatives`` are equal-length sequences of small
    nonnegative integers — anything numpy can view as ``int64`` (e.g.
    batched Poisson draws).  This is the signed-embedding seam the
    distributed differential-privacy noising uses: each server's noise
    share is a difference of two Polya draws, and mapping it into the
    field plane-resident means the noised accumulator never crosses to
    Python ints before ``publish()``.

    On the numpy backend the limb split is ``L`` shift-and-mask passes
    over the ``int64`` input followed by one vectorized modular
    subtraction — no per-component Python-int field ops anywhere.
    """
    if use_numpy(force_pure):
        ctx = _ctx(field)
        pos = _np.asarray(positives, dtype=_np.int64)
        neg = _np.asarray(negatives, dtype=_np.int64)
        if pos.ndim != 1 or pos.shape != neg.shape:
            raise FieldError("signed_delta_batch needs equal 1-D inputs")
        if pos.size and (bool((pos < 0).any()) or bool((neg < 0).any())):
            raise FieldError("signed_delta_batch inputs must be nonnegative")
        if field.modulus.bit_length() <= 63:
            modulus = _np.int64(field.modulus)
            pos = pos % modulus
            neg = neg % modulus
        # else: any int64 value is already < p, hence canonical.
        L = ctx.n_limbs
        pos_planes = _np.zeros((L,) + pos.shape, dtype=_np.int64)
        neg_planes = _np.zeros((L,) + neg.shape, dtype=_np.int64)
        for i in range(L):
            shift = LIMB_BITS * i
            if shift >= 63:
                break  # int64 inputs have no bits there; a >=64-bit
                # numpy shift would also be undefined, not zero
            pos_planes[i] = (pos >> shift) & LIMB_MASK
            neg_planes[i] = (neg >> shift) & LIMB_MASK
        return BatchVector(
            field, pos.shape, _np_sub(ctx, pos_planes, neg_planes), True
        )
    p = field.modulus
    positives = [int(v) for v in positives]
    negatives = [int(v) for v in negatives]
    if len(positives) != len(negatives):
        raise FieldError("signed_delta_batch needs equal 1-D inputs")
    if any(v < 0 for v in positives) or any(v < 0 for v in negatives):
        raise FieldError("signed_delta_batch inputs must be nonnegative")
    return BatchVector(
        field, (len(positives),),
        [(a - b) % p for a, b in zip(positives, negatives)], False,
    )


def dot_batch_planes(
    field: PrimeField,
    weights_list: "Sequence[Sequence[int]] | PreparedWeights",
    batch: BatchVector,
) -> BatchVector:
    """Batched functionals, plane-resident: ``out[k, b] = w_k . row_b``.

    The unified verification core: the share matrix arrives as limb
    planes (from :func:`assemble_rows`) and the per-submission round
    scalars come back as a ``(K, B)`` :class:`BatchVector` — no
    list-of-ints crossing at all, so the round-1/round-2 message
    algebra downstream can stay in plane form too.
    """
    if not isinstance(weights_list, PreparedWeights):
        weights_list = PreparedWeights(field, weights_list)
    if len(batch.shape) != 2:
        raise FieldError("dot_batch_planes needs a 2-D batch")
    B, D = batch.shape
    if D != weights_list.width:
        raise FieldError(
            f"weight width {weights_list.width} vs batch width {D}"
        )
    K = weights_list.n_weights
    if B == 0:
        return BatchVector.zeros(field, (K, 0), force_pure=batch.force_pure)
    if batch._numpy:
        ctx = _ctx(field)
        out = _np_matvec(ctx, weights_list.planes(ctx), batch._data)
        return BatchVector(field, (K, B), out, True)
    return BatchVector(
        field, (K, B),
        [
            [field.inner_product(w, row) for row in batch._data]
            for w in weights_list.weights_list
        ],
        False,
    )


def dot_batch_multi(
    field: PrimeField,
    weights_list: "Sequence[Sequence[int]] | PreparedWeights",
    batch: BatchVector,
) -> list[list[int]]:
    """:func:`dot_rows_multi` over an already-ingested ``(B, D)`` batch.

    Int-returning wrapper over :func:`dot_batch_planes` for callers
    that want the per-submission scalars as Python ints.
    """
    return dot_batch_planes(field, weights_list, batch).to_ints()


# ----------------------------------------------------------------------
# Row-oriented helpers (list[int] in, list[int] out) — what the SNIP
# and protocol layers call.
# ----------------------------------------------------------------------


class PreparedWeights:
    """Weight vectors pre-validated (and pre-encoded) for reuse.

    The verifier applies the same challenge functionals to every batch
    under a context; preparing them once skips the per-call list->limb
    conversion.  Transparent to the pure backend (the original rows
    are kept).
    """

    __slots__ = ("field", "n_weights", "width", "weights_list", "_planes")

    def __init__(
        self, field: PrimeField, weights_list: Sequence[Sequence[int]]
    ) -> None:
        self.field = field
        self.weights_list = [list(w) for w in weights_list]
        self.n_weights = len(self.weights_list)
        self.width = len(self.weights_list[0]) if self.weights_list else 0
        for w in self.weights_list:
            if len(w) != self.width:
                raise FieldError("ragged weight vectors")
        self._planes = None

    def planes(self, ctx: "_LimbContext"):
        if self._planes is None:
            flat: list[int] = []
            for w in self.weights_list:
                flat.extend(w)
            self._planes = _encode_checked(ctx, flat).reshape(
                ctx.n_limbs, self.n_weights, self.width
            )
        return self._planes


def prepare_weights(
    field: PrimeField, weights_list: Sequence[Sequence[int]]
) -> PreparedWeights:
    """Pre-validate weight vectors for repeated :func:`dot_rows_multi`."""
    return PreparedWeights(field, weights_list)


def dot_rows(
    field: PrimeField,
    weights: Sequence[int],
    rows: Sequence[Sequence[int]],
    force_pure: bool | None = None,
) -> list[int]:
    """``[inner_product(weights, row) for row in rows]``, vectorized."""
    return dot_rows_multi(field, [weights], rows, force_pure)[0]


def dot_rows_multi(
    field: PrimeField,
    weights_list: "Sequence[Sequence[int]] | PreparedWeights",
    rows: Sequence[Sequence[int]],
    force_pure: bool | None = None,
) -> list[list[int]]:
    """Inner products of every row against several weight vectors.

    Returns ``out[k][b] = inner_product(weights_list[k], rows[b])``.
    This is the batched-verification workhorse: one fused limb matmul
    covers every (weights, submission) pair.  ``weights_list`` may be
    a :class:`PreparedWeights` to amortize its conversion across calls.
    """
    if not isinstance(weights_list, PreparedWeights):
        weights_list = PreparedWeights(field, weights_list)
    if not rows:
        return [[] for _ in range(weights_list.n_weights)]
    D = weights_list.width
    if use_numpy(force_pure):
        ctx = _ctx(field)
        flat_m: list[int] = []
        for row in rows:
            if len(row) != D:
                raise FieldError("ragged rows")
            flat_m.extend(row)
        K, B = weights_list.n_weights, len(rows)
        w_planes = weights_list.planes(ctx)
        m_planes = _encode_checked(ctx, flat_m).reshape(ctx.n_limbs, B, D)
        out = _np_matvec(ctx, w_planes, m_planes)        # (L, K, B)
        flat = _decode(ctx, out)
        return [flat[k * B:(k + 1) * B] for k in range(K)]
    for row in rows:
        if len(row) != D:
            raise FieldError("ragged rows")
    return [
        [field.inner_product(w, row) for row in rows]
        for w in weights_list.weights_list
    ]


def elementwise_mul_rows(
    field: PrimeField,
    a_rows: Sequence[Sequence[int]],
    b_rows: Sequence[Sequence[int]],
    force_pure: bool | None = None,
) -> list[list[int]]:
    """Rowwise Hadamard products (the prover's ``h = f * g`` sweep)."""
    a = BatchVector.from_ints(field, a_rows, force_pure)
    b = BatchVector.from_ints(field, b_rows, force_pure)
    return (a * b).to_ints()


def accumulate_rows(
    field: PrimeField,
    rows: Sequence[Sequence[int]],
    force_pure: bool | None = None,
) -> list[int]:
    """Column-wise sum of many equal-length vectors (vec_sum, batched)."""
    if not rows:
        raise FieldError("accumulate_rows of no rows")
    return BatchVector.from_ints(field, rows, force_pure).sum_rows().to_ints()


def ntt_rows(
    field: PrimeField,
    rows: Sequence[Sequence[int]],
    root: int,
    force_pure: bool | None = None,
) -> list[list[int]]:
    """Forward NTT of every row (shared root/domain)."""
    return BatchVector.from_ints(field, rows, force_pure).ntt(root).to_ints()


def intt_rows(
    field: PrimeField,
    rows: Sequence[Sequence[int]],
    root: int,
    force_pure: bool | None = None,
) -> list[list[int]]:
    """Inverse NTT of every row (shared root/domain)."""
    return BatchVector.from_ints(field, rows, force_pure).intt(root).to_ints()


def poly_eval_rows(
    field: PrimeField,
    coeff_rows: Sequence[Sequence[int]],
    x: int,
    force_pure: bool | None = None,
) -> list[int]:
    """Evaluate many coefficient-form polynomials at one point ``x``.

    Evaluation at a fixed point is an inner product against the power
    basis ``[1, x, x^2, ...]`` — one batched dot, not B Horner loops.
    """
    if not coeff_rows:
        return []
    width = max(len(r) for r in coeff_rows)
    if width == 0:
        return [0] * len(coeff_rows)
    p = field.modulus
    powers = [1] * width
    for i in range(1, width):
        powers[i] = powers[i - 1] * x % p
    rows = [list(r) + [0] * (width - len(r)) for r in coeff_rows]
    return dot_rows(field, powers, rows, force_pure)
