"""Prime-field arithmetic for Prio.

All of Prio's secret sharing, SNIP proofs, and affine-aggregatable
encodings work over a finite field F_p (Section 3 of the paper: "when we
write c = a + b in F_p we mean c = a + b (mod p)").  Field elements are
represented as plain Python ``int`` values in ``[0, p)`` and vectors as
``list[int]``; this keeps the hot arithmetic paths free of per-element
object overhead while native bigints give us the 87-bit and 265-bit
moduli the paper benchmarks with.

The moduli shipped in :mod:`repro.field.parameters` are *FFT-friendly*:
``p - 1`` is divisible by a large power of two, so the multiplicative
group contains the radix-2 evaluation domains that the SNIP prover's
fast polynomial arithmetic needs (Section 6: "our evaluations use an
FFT-friendly 87-bit field").
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence


class FieldError(ValueError):
    """Raised for operations that are undefined in the field."""


class PrimeField:
    """The finite field of integers modulo a prime ``modulus``.

    Instances are lightweight and stateless apart from small caches; the
    standard fields used throughout the library are module-level
    singletons in :mod:`repro.field.parameters`.

    Parameters
    ----------
    modulus:
        A prime number.  Primality is the caller's responsibility; the
        shipped parameters were generated with 40-round Miller-Rabin.
    two_adicity:
        Largest ``k`` such that ``2**k`` divides ``modulus - 1``.  Needed
        for NTT evaluation domains; fields used only for aggregation
        (e.g. GF(2)) may pass 0.
    generator:
        A generator of the full multiplicative group, used to derive
        roots of unity.  Required whenever ``two_adicity > 0``.
    name:
        Human-readable label used in reprs and benchmark reports.
    """

    __slots__ = (
        "modulus",
        "two_adicity",
        "generator",
        "name",
        "bits",
        "encoded_size",
        "_root_cache",
    )

    def __init__(
        self,
        modulus: int,
        two_adicity: int = 0,
        generator: int | None = None,
        name: str | None = None,
    ) -> None:
        if modulus < 2:
            raise FieldError(f"modulus must be >= 2, got {modulus}")
        if two_adicity > 0 and generator is None:
            raise FieldError("a generator is required when two_adicity > 0")
        if two_adicity > 0 and (modulus - 1) % (1 << two_adicity) != 0:
            raise FieldError(
                f"2^{two_adicity} does not divide modulus-1 = {modulus - 1}"
            )
        self.modulus = modulus
        self.two_adicity = two_adicity
        self.generator = generator
        self.name = name or f"F_{modulus}"
        self.bits = modulus.bit_length()
        # Fixed-width big-endian encoding used by the wire format.
        self.encoded_size = (self.bits + 7) // 8
        self._root_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Scalar arithmetic
    # ------------------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.modulus

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.modulus

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.modulus

    def neg(self, a: int) -> int:
        return (-a) % self.modulus

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.modulus)

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises :class:`FieldError` for zero."""
        a %= self.modulus
        if a == 0:
            raise FieldError("zero has no multiplicative inverse")
        return pow(a, -1, self.modulus)

    def div(self, a: int, b: int) -> int:
        return (a * self.inv(b)) % self.modulus

    def reduce(self, a: int) -> int:
        """Canonical representative of ``a`` in ``[0, p)``."""
        return a % self.modulus

    # ------------------------------------------------------------------
    # Signed embedding (used by differential-privacy noise and
    # fixed-point encodings, which need small negative values)
    # ------------------------------------------------------------------

    def from_signed(self, a: int) -> int:
        """Embed a signed integer, mapping negatives to ``p - |a|``."""
        return a % self.modulus

    def to_signed(self, a: int) -> int:
        """Centered lift: the representative in ``(-p/2, p/2]``."""
        a %= self.modulus
        if a > self.modulus // 2:
            return a - self.modulus
        return a

    # ------------------------------------------------------------------
    # Vector arithmetic (lists of canonical ints)
    # ------------------------------------------------------------------

    def vec_add(self, xs: Sequence[int], ys: Sequence[int]) -> list[int]:
        if len(xs) != len(ys):
            raise FieldError(f"length mismatch: {len(xs)} vs {len(ys)}")
        p = self.modulus
        return [(x + y) % p for x, y in zip(xs, ys)]

    def vec_sub(self, xs: Sequence[int], ys: Sequence[int]) -> list[int]:
        if len(xs) != len(ys):
            raise FieldError(f"length mismatch: {len(xs)} vs {len(ys)}")
        p = self.modulus
        return [(x - y) % p for x, y in zip(xs, ys)]

    def vec_neg(self, xs: Sequence[int]) -> list[int]:
        p = self.modulus
        return [(-x) % p for x in xs]

    def vec_scale(self, c: int, xs: Sequence[int]) -> list[int]:
        p = self.modulus
        c %= p
        return [(c * x) % p for x in xs]

    def vec_sum(self, vectors: Iterable[Sequence[int]]) -> list[int]:
        """Component-wise sum of equal-length vectors.

        This is the servers' Aggregate step: accumulators are updated by
        repeated ``vec_add``; ``vec_sum`` is the batched equivalent.
        """
        total: list[int] | None = None
        p = self.modulus
        for vec in vectors:
            if total is None:
                total = [v % p for v in vec]
            else:
                if len(vec) != len(total):
                    raise FieldError("length mismatch in vec_sum")
                total = [(t + v) % p for t, v in zip(total, vec)]
        if total is None:
            raise FieldError("vec_sum of no vectors")
        return total

    def inner_product(self, xs: Sequence[int], ys: Sequence[int]) -> int:
        """Inner product; the core of the fixed-point evaluation trick.

        Appendix I: with precomputed Lagrange constants c_t, a server
        evaluates an interpolated polynomial at the point r as the inner
        product sum_t c_t * y_t, costing M multiplications instead of a
        full interpolation.
        """
        if len(xs) != len(ys):
            raise FieldError(f"length mismatch: {len(xs)} vs {len(ys)}")
        acc = 0
        for x, y in zip(xs, ys):
            acc += x * y
        return acc % self.modulus

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------

    def rand(self, rng: random.Random) -> int:
        """A uniform field element drawn from ``rng`` (``random.Random``)."""
        return rng.randrange(self.modulus)

    def rand_nonzero(self, rng: random.Random) -> int:
        if self.modulus == 2:
            return 1
        return rng.randrange(1, self.modulus)

    def rand_vector(self, n: int, rng: random.Random) -> list[int]:
        randrange = rng.randrange
        p = self.modulus
        return [randrange(p) for _ in range(n)]

    # ------------------------------------------------------------------
    # Roots of unity / NTT support
    # ------------------------------------------------------------------

    def root_of_unity(self, order: int) -> int:
        """A primitive ``order``-th root of unity.

        ``order`` must be a power of two dividing ``2**two_adicity``.
        Results are cached: the SNIP verifier asks for the same domains
        for every submission.
        """
        if order in self._root_cache:
            return self._root_cache[order]
        if order < 1 or order & (order - 1) != 0:
            raise FieldError(f"order must be a power of two, got {order}")
        log_order = order.bit_length() - 1
        if log_order > self.two_adicity:
            raise FieldError(
                f"field {self.name} has 2-adicity {self.two_adicity}; "
                f"cannot build a domain of size {order}"
            )
        if order == 1:
            root = 1
        else:
            exponent = (self.modulus - 1) >> log_order
            root = pow(self.generator, exponent, self.modulus)
        self._root_cache[order] = root
        return root

    # ------------------------------------------------------------------
    # Serialization (fixed-width big-endian, used by the wire format)
    # ------------------------------------------------------------------

    def encode_element(self, a: int) -> bytes:
        return (a % self.modulus).to_bytes(self.encoded_size, "big")

    def decode_element(self, data: bytes) -> int:
        if len(data) != self.encoded_size:
            raise FieldError(
                f"expected {self.encoded_size} bytes, got {len(data)}"
            )
        value = int.from_bytes(data, "big")
        if value >= self.modulus:
            raise FieldError("encoded value out of range")
        return value

    def encode_vector(self, xs: Sequence[int]) -> bytes:
        return b"".join(self.encode_element(x) for x in xs)

    def decode_vector(self, data: bytes) -> list[int]:
        size = self.encoded_size
        if len(data) % size != 0:
            raise FieldError("vector encoding is not a whole number of elements")
        return [
            self.decode_element(data[i : i + size])
            for i in range(0, len(data), size)
        ]

    # ------------------------------------------------------------------
    # Hash-to-field (used to derive verification challenges)
    # ------------------------------------------------------------------

    def hash_to_element(self, *parts: bytes) -> int:
        """Derive a field element from a transcript, via SHAKE-256.

        Sampling 2x the modulus width keeps the modular bias below
        2^-bits, which is negligible for the shipped fields.
        """
        xof = hashlib.shake_256()
        for part in parts:
            xof.update(len(part).to_bytes(4, "big"))
            xof.update(part)
        wide = int.from_bytes(xof.digest(2 * self.encoded_size), "big")
        return wide % self.modulus

    # ------------------------------------------------------------------

    def __contains__(self, a: object) -> bool:
        return isinstance(a, int) and 0 <= a < self.modulus

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"PrimeField({self.name}, bits={self.bits})"
