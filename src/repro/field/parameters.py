"""Standard field parameters for the Prio reproduction.

The paper's prototype benchmarks two FFT-friendly fields (Table 3): an
87-bit field (the default; soundness error (2M+1)/|F| is ~2^-60 for the
largest circuits benchmarked) and a 265-bit field (for deployments that
want to sum very large counters or drive the soundness error below
2^-128 in a single Schwartz-Zippel round).

The original Go/FLINT implementation's exact moduli were not published
in the paper, so this reproduction generated its own with the same
properties.  All parameters below were produced by 40-round
Miller-Rabin searches (see DESIGN.md); the stated generators were
checked against the full factorization of ``p - 1``.

FIELD87
    ``p = 2^86 + 2^35 + 1`` (87 bits).  2-adicity 30: supports NTT
    domains up to 2^30 elements, far beyond the 2^18 the largest
    benchmark circuit needs.

FIELD265
    ``p = 524321 * 2^245 + 1`` (265 bits, a Proth prime).

FIELD64
    Goldilocks prime ``2^64 - 2^32 + 1``: a fast field for unit tests
    and ablations that do not need the paper's exact widths.

FIELD_SMALL
    ``p = 3329`` (2-adicity 8): small enough to exercise soundness
    *failures* — the Schwartz-Zippel test's (2M+1)/|F| error is
    observable at this size, which the soundness tests exploit.

FIELD_TINY
    ``p = 97``: for exhaustive brute-force checks in tests.

GF2
    The field with two elements.  Additive sharing over GF(2) is XOR
    sharing; the boolean OR/AND AFEs (Section 5.2) aggregate here.
"""

from __future__ import annotations

from repro.field.prime_field import PrimeField

#: 87-bit FFT-friendly field (the paper's default evaluation field).
FIELD87 = PrimeField(
    modulus=(1 << 86) + (1 << 35) + 1,
    two_adicity=30,
    generator=5,
    name="F87",
)

#: 265-bit FFT-friendly field (the paper's large evaluation field).
FIELD265 = PrimeField(
    modulus=524321 * (1 << 245) + 1,
    two_adicity=245,
    generator=5,
    name="F265",
)

#: 64-bit Goldilocks field; fast substitute for tests/ablations.
FIELD64 = PrimeField(
    modulus=(1 << 64) - (1 << 32) + 1,
    two_adicity=32,
    generator=7,
    name="F64",
)

#: Small field where soundness error is observable (tests only).
FIELD_SMALL = PrimeField(modulus=3329, two_adicity=8, generator=3, name="F3329")

#: Tiny field for brute-force checks (tests only).
FIELD_TINY = PrimeField(modulus=97, two_adicity=5, generator=5, name="F97")

#: GF(2); sharing here is XOR sharing (boolean OR/AND AFEs).
GF2 = PrimeField(modulus=2, name="GF2")

#: Fields a deployment would actually choose between, keyed by name.
STANDARD_FIELDS: dict[str, PrimeField] = {
    "F87": FIELD87,
    "F265": FIELD265,
    "F64": FIELD64,
}
