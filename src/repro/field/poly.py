"""Dense polynomial arithmetic over a prime field.

Polynomials are coefficient lists, lowest degree first:
``[c0, c1, c2]`` is ``c0 + c1*x + c2*x^2``.  The zero polynomial is
``[]`` (helpers normalize trailing zeros away).

These routines are the *reference* implementations used by tests and by
small circuits; the SNIP hot path uses the NTT-based routines in
:mod:`repro.field.ntt`, and the two are cross-checked against each
other in the test suite.
"""

from __future__ import annotations

from typing import Sequence

from repro.field.prime_field import FieldError, PrimeField


def poly_normalize(coeffs: Sequence[int]) -> list[int]:
    """Strip trailing zero coefficients (canonical form)."""
    result = list(coeffs)
    while result and result[-1] == 0:
        result.pop()
    return result


def poly_degree(coeffs: Sequence[int]) -> int:
    """Degree of the polynomial; -1 for the zero polynomial."""
    return len(poly_normalize(coeffs)) - 1


def poly_eval(field: PrimeField, coeffs: Sequence[int], x: int) -> int:
    """Evaluate at ``x`` by Horner's rule."""
    p = field.modulus
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % p
    return acc


def poly_eval_batch(
    field: PrimeField,
    coeff_rows: Sequence[Sequence[int]],
    x: int,
    force_pure: bool | None = None,
) -> list[int]:
    """Evaluate many polynomials at one point, vectorized.

    Evaluation at a fixed ``x`` is an inner product against the power
    basis — one batched dot over the whole coefficient matrix instead
    of one Horner loop per polynomial (the same fixed-point trick the
    verifier's Appendix I optimization exploits).
    """
    from repro.field.batch import poly_eval_rows

    return poly_eval_rows(field, coeff_rows, x, force_pure)


def poly_add(
    field: PrimeField, a: Sequence[int], b: Sequence[int]
) -> list[int]:
    p = field.modulus
    if len(a) < len(b):
        a, b = b, a
    out = list(a)
    for i, c in enumerate(b):
        out[i] = (out[i] + c) % p
    return out


def poly_sub(
    field: PrimeField, a: Sequence[int], b: Sequence[int]
) -> list[int]:
    return poly_add(field, a, field.vec_neg(list(b)))


def poly_scale(field: PrimeField, c: int, a: Sequence[int]) -> list[int]:
    return field.vec_scale(c, list(a))


def poly_mul(
    field: PrimeField, a: Sequence[int], b: Sequence[int]
) -> list[int]:
    """Schoolbook product, O(deg(a) * deg(b)).

    Used for small polynomials and as the reference against which the
    NTT product is tested.
    """
    a = poly_normalize(a)
    b = poly_normalize(b)
    if not a or not b:
        return []
    p = field.modulus
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % p
    return out


def lagrange_interpolate(
    field: PrimeField, xs: Sequence[int], ys: Sequence[int]
) -> list[int]:
    """Coefficients of the unique degree < n polynomial through the points.

    O(n^2).  This is the generic path the paper's Section 4.2 describes
    ("the servers use polynomial interpolation to construct [f]_i and
    [g]_i"); the production path avoids it via the Appendix I
    optimizations, but small circuits and tests use it directly.
    """
    if len(xs) != len(ys):
        raise FieldError("point count mismatch")
    if len(set(x % field.modulus for x in xs)) != len(xs):
        raise FieldError("interpolation points must be distinct")
    p = field.modulus
    n = len(xs)
    coeffs = [0] * n
    for i in range(n):
        # numerator polynomial prod_{j != i} (x - x_j), built incrementally
        num = [1]
        denom = 1
        for j in range(n):
            if j == i:
                continue
            num = _mul_linear(field, num, (-xs[j]) % p)
            denom = (denom * (xs[i] - xs[j])) % p
        scale = (ys[i] * pow(denom, -1, p)) % p
        for k, c in enumerate(num):
            coeffs[k] = (coeffs[k] + scale * c) % p
    return poly_normalize(coeffs)


def _mul_linear(field: PrimeField, coeffs: list[int], constant: int) -> list[int]:
    """Multiply ``coeffs`` by the linear factor ``(x + constant)``."""
    p = field.modulus
    out = [0] * (len(coeffs) + 1)
    for i, c in enumerate(coeffs):
        out[i] = (out[i] + c * constant) % p
        out[i + 1] = (out[i + 1] + c) % p
    return out


def lagrange_coefficients_at(
    field: PrimeField, xs: Sequence[int], r: int
) -> list[int]:
    """Constants ``c_t`` with ``P(r) = sum_t c_t * P(x_t)``.

    This is the Appendix I "verification without interpolation" trick:
    interpolation-and-evaluation at a *fixed* point ``r`` collapses to a
    precomputable inner product.  O(n^2) here, but computed once per
    choice of ``r`` and amortized over ~2^10 client submissions.
    """
    p = field.modulus
    n = len(xs)
    if len(set(x % p for x in xs)) != n:
        raise FieldError("evaluation points must be distinct")
    out = []
    for i in range(n):
        num = 1
        denom = 1
        for j in range(n):
            if j == i:
                continue
            num = (num * (r - xs[j])) % p
            denom = (denom * (xs[i] - xs[j])) % p
        out.append((num * pow(denom, -1, p)) % p)
    return out
