"""Finite-field substrate: prime fields, polynomials, NTTs — and the
vectorized batch backend.

Everything in Prio — secret sharing, SNIPs, and AFEs — is arithmetic
over a prime field.  This subpackage is self-contained and has no
dependencies on the rest of the library.

Batched verification
--------------------

The scalar :class:`PrimeField` API performs one Python bigint call per
element.  :mod:`repro.field.batch` provides the same arithmetic over
whole vectors (or batches of vectors) at once, which is what the
server-side batched SNIP pipeline (``verify_batch`` /
``prove_many`` / the deployment ``batch_size`` knob) is built on:

* **Limb scheme** — the 87-/265-bit moduli don't fit 64-bit lanes, so
  each element is split into base-``2^24`` limbs stored as parallel
  ``int64`` planes.  24-bit limbs keep every limb exactly three bytes
  and leave 15 bits of lazy-reduction headroom: limb products are 48
  bits, so batched inner products accumulate thousands of products per
  lane before a single carry pass + vectorized Barrett reduction.
  Results are always exact canonical representatives — bit-for-bit
  equal to the scalar path (asserted by the randomized equivalence
  suite in ``tests/field/test_batch_backend.py``).

* **Backend selection** — the numpy backend is used when numpy imports
  successfully and ``REPRO_FORCE_PURE=1`` is not set; otherwise a
  pure-Python fallback with identical semantics runs.  Every entry
  point also takes ``force_pure`` for explicit per-call control.

* **The ``batch_size`` knob** — ``PrioDeployment.create(...,
  batch_size=64)`` makes servers verify submissions in batches of 64:
  one fused limb matmul covers every (challenge-weights, submission)
  pair, amortizing fixed costs that the one-at-a-time path pays per
  submission.  Acceptance decisions, statistics, and replay protection
  remain per submission.
"""

from repro.field.prime_field import FieldError, PrimeField
from repro.field.parameters import (
    FIELD64,
    FIELD87,
    FIELD265,
    FIELD_SMALL,
    FIELD_TINY,
    GF2,
    STANDARD_FIELDS,
)
from repro.field.poly import (
    lagrange_coefficients_at,
    lagrange_interpolate,
    poly_add,
    poly_degree,
    poly_eval,
    poly_eval_batch,
    poly_mul,
    poly_normalize,
    poly_scale,
    poly_sub,
)
from repro.field.ntt import (
    EvaluationDomain,
    batch_inverse,
    intt,
    intt_batch,
    next_power_of_two,
    ntt,
    ntt_batch,
    poly_mul_ntt,
)
from repro.field.batch import (
    BatchVector,
    PreparedWeights,
    accumulate_rows,
    assemble_rows,
    backend_name,
    butterfly,
    concat_columns,
    decode_bytes_batch,
    dot_batch_multi,
    dot_rows,
    dot_rows_multi,
    elementwise_mul_rows,
    encode_bytes_batch,
    numpy_available,
    poly_eval_rows,
    prepare_weights,
    rejection_sample_batch,
    use_numpy,
)

__all__ = [
    "FieldError",
    "PrimeField",
    "FIELD64",
    "FIELD87",
    "FIELD265",
    "FIELD_SMALL",
    "FIELD_TINY",
    "GF2",
    "STANDARD_FIELDS",
    "lagrange_coefficients_at",
    "lagrange_interpolate",
    "poly_add",
    "poly_degree",
    "poly_eval",
    "poly_eval_batch",
    "poly_mul",
    "poly_normalize",
    "poly_scale",
    "poly_sub",
    "EvaluationDomain",
    "batch_inverse",
    "intt",
    "intt_batch",
    "next_power_of_two",
    "ntt",
    "ntt_batch",
    "poly_mul_ntt",
    "BatchVector",
    "PreparedWeights",
    "accumulate_rows",
    "assemble_rows",
    "backend_name",
    "butterfly",
    "concat_columns",
    "decode_bytes_batch",
    "dot_batch_multi",
    "dot_rows",
    "dot_rows_multi",
    "elementwise_mul_rows",
    "encode_bytes_batch",
    "numpy_available",
    "poly_eval_rows",
    "prepare_weights",
    "rejection_sample_batch",
    "use_numpy",
]
