"""Finite-field substrate: prime fields, polynomials, and NTTs.

Everything in Prio — secret sharing, SNIPs, and AFEs — is arithmetic
over a prime field.  This subpackage is self-contained and has no
dependencies on the rest of the library.
"""

from repro.field.prime_field import FieldError, PrimeField
from repro.field.parameters import (
    FIELD64,
    FIELD87,
    FIELD265,
    FIELD_SMALL,
    FIELD_TINY,
    GF2,
    STANDARD_FIELDS,
)
from repro.field.poly import (
    lagrange_coefficients_at,
    lagrange_interpolate,
    poly_add,
    poly_degree,
    poly_eval,
    poly_mul,
    poly_normalize,
    poly_scale,
    poly_sub,
)
from repro.field.ntt import (
    EvaluationDomain,
    batch_inverse,
    intt,
    next_power_of_two,
    ntt,
    poly_mul_ntt,
)

__all__ = [
    "FieldError",
    "PrimeField",
    "FIELD64",
    "FIELD87",
    "FIELD265",
    "FIELD_SMALL",
    "FIELD_TINY",
    "GF2",
    "STANDARD_FIELDS",
    "lagrange_coefficients_at",
    "lagrange_interpolate",
    "poly_add",
    "poly_degree",
    "poly_eval",
    "poly_mul",
    "poly_normalize",
    "poly_scale",
    "poly_sub",
    "EvaluationDomain",
    "batch_inverse",
    "intt",
    "next_power_of_two",
    "ntt",
    "poly_mul_ntt",
]
