"""Multi-party evaluation of an arithmetic circuit with Beaver triples.

This is the engine behind the *Prio-MPC* variant (Section 4.4 /
Appendix E): instead of the client proving ``Valid(x) = 1`` with a
SNIP, the servers evaluate the Valid circuit themselves on the shared
input, consuming one client-dealt multiplication triple per
multiplication gate.  Server-to-server traffic is Theta(M) field
elements and the round count is the circuit's multiplicative depth —
both properties the paper's Figure 6 contrasts against the SNIP's
constant traffic.

The evaluation here is synchronous and batched by depth level: all
multiplication gates whose inputs are ready share one broadcast round,
which is what a real pipelined deployment would do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.circuit import Circuit, CircuitError, Op
from repro.field.prime_field import PrimeField
from repro.mpc.beaver import BeaverTripleShare, multiply_finalize, multiply_round1


@dataclass
class MpcResult:
    """Outcome of a multi-party circuit evaluation at one server."""

    assertion_shares: list[int]
    n_rounds: int
    #: field elements this server broadcast (2 per mul gate)
    elements_broadcast: int


def mul_gate_levels(circuit: Circuit) -> list[list[int]]:
    """Group multiplication gates into depth levels.

    A gate's level is one more than the deepest multiplication gate it
    depends on; gates in the same level can be evaluated in a single
    communication round.  Affine gates do not add depth.
    """
    depth = [0] * len(circuit.gates)
    levels: dict[int, list[int]] = {}
    mul_index = 0
    for i, gate in enumerate(circuit.gates):
        if gate.op in (Op.INPUT, Op.CONST):
            depth[i] = 0
        elif gate.op is Op.MUL_CONST:
            depth[i] = depth[gate.left]
        elif gate.op in (Op.ADD, Op.SUB):
            depth[i] = max(depth[gate.left], depth[gate.right])
        else:  # MUL
            level = max(depth[gate.left], depth[gate.right])
            depth[i] = level + 1
            levels.setdefault(level, []).append(mul_index)
            mul_index += 1
    return [levels[k] for k in sorted(levels)]


def multiplicative_depth(circuit: Circuit) -> int:
    return len(mul_gate_levels(circuit))


class CircuitMpcParty:
    """One server's state during a multi-party circuit evaluation.

    Usage is lock-step: the orchestrator calls :meth:`start_round` on
    every party, gathers the returned ``(d, e)`` broadcast lists,
    hands *all* parties' messages to :meth:`finish_round` on each, and
    repeats for every depth level; :meth:`result` yields the party's
    shares of the assertion wires.
    """

    def __init__(
        self,
        field: PrimeField,
        circuit: Circuit,
        server_index: int,
        n_servers: int,
        input_share: Sequence[int],
        triple_shares: Sequence[BeaverTripleShare],
    ) -> None:
        if len(triple_shares) != circuit.n_mul_gates:
            raise CircuitError(
                f"need {circuit.n_mul_gates} triples, got {len(triple_shares)}"
            )
        self.field = field
        self.circuit = circuit
        self.server_index = server_index
        self.n_servers = n_servers
        self.is_leader = server_index == 0
        self.triple_shares = list(triple_shares)
        self.levels = mul_gate_levels(circuit)
        self._elements_broadcast = 0
        self._round = 0

        # Wire shares, filled progressively; affine prefix evaluated now.
        self._wires: list[int | None] = [None] * len(circuit.gates)
        self._mul_gate_wire: list[int] = circuit.mul_gates
        self._inputs = [v % field.modulus for v in input_share]
        self._sweep()

    def _sweep(self) -> None:
        """Fill in every wire whose operands are known (affine closure)."""
        f = self.field
        p = f.modulus
        wires = self._wires
        for i, gate in enumerate(self.circuit.gates):
            if wires[i] is not None:
                continue
            if gate.op is Op.INPUT:
                wires[i] = self._inputs[gate.payload]
            elif gate.op is Op.CONST:
                wires[i] = gate.payload % p if self.is_leader else 0
            elif gate.op is Op.ADD:
                left, right = wires[gate.left], wires[gate.right]
                if left is not None and right is not None:
                    wires[i] = (left + right) % p
            elif gate.op is Op.SUB:
                left, right = wires[gate.left], wires[gate.right]
                if left is not None and right is not None:
                    wires[i] = (left - right) % p
            elif gate.op is Op.MUL_CONST:
                left = wires[gate.left]
                if left is not None:
                    wires[i] = (gate.payload * left) % p
            # MUL gates are filled by finish_round.

    # ------------------------------------------------------------------

    @property
    def n_rounds(self) -> int:
        return len(self.levels)

    def start_round(self) -> list[tuple[int, int]]:
        """Broadcast (d, e) for every mul gate in the current level."""
        if self._round >= len(self.levels):
            raise CircuitError("all rounds already executed")
        messages = []
        for t in self.levels[self._round]:
            gate = self.circuit.gates[self._mul_gate_wire[t]]
            y = self._wires[gate.left]
            z = self._wires[gate.right]
            if y is None or z is None:
                raise CircuitError("mul gate scheduled before inputs ready")
            messages.append(
                multiply_round1(self.field, y, z, self.triple_shares[t])
            )
        self._elements_broadcast += 2 * len(messages)
        return messages

    def finish_round(
        self, all_messages: Sequence[Sequence[tuple[int, int]]]
    ) -> None:
        """Consume every party's round broadcast and fill mul outputs."""
        if len(all_messages) != self.n_servers:
            raise CircuitError("need messages from every server")
        level = self.levels[self._round]
        for j, t in enumerate(level):
            d_shares = [msgs[j][0] for msgs in all_messages]
            e_shares = [msgs[j][1] for msgs in all_messages]
            product_share = multiply_finalize(
                self.field, d_shares, e_shares,
                self.triple_shares[t], self.n_servers,
            )
            self._wires[self._mul_gate_wire[t]] = product_share
        self._round += 1
        self._sweep()

    def result(self) -> MpcResult:
        if self._round != len(self.levels):
            raise CircuitError("evaluation incomplete")
        shares = []
        for w in self.circuit.assertions:
            value = self._wires[w]
            if value is None:
                raise CircuitError("assertion wire never resolved")
            shares.append(value)
        return MpcResult(
            assertion_shares=shares,
            n_rounds=len(self.levels),
            elements_broadcast=self._elements_broadcast,
        )


def run_circuit_mpc(
    field: PrimeField,
    circuit: Circuit,
    input_shares: Sequence[Sequence[int]],
    triple_shares_per_server: Sequence[Sequence[BeaverTripleShare]],
) -> list[MpcResult]:
    """Convenience orchestrator: run all parties lock-step in-process."""
    n_servers = len(input_shares)
    parties = [
        CircuitMpcParty(
            field, circuit, i, n_servers,
            input_shares[i], triple_shares_per_server[i],
        )
        for i in range(n_servers)
    ]
    for _ in range(parties[0].n_rounds):
        broadcasts = [party.start_round() for party in parties]
        for party in parties:
            party.finish_round(broadcasts)
    return [party.result() for party in parties]
