"""Beaver multiplication triples (Appendix C.2).

A *multiplication triple* is a one-time-use secret-shared tuple
``(a, b, c)`` with ``c = a * b``.  Holding shares of a triple, servers
can multiply two secret-shared values with a single broadcast each:

    [d]_i = [y]_i - [a]_i        [e]_i = [z]_i - [b]_i
    (broadcast; reconstruct d and e)
    [yz]_i = d*e/s + d*[b]_i + e*[a]_i + [c]_i

In classic MPC the triples come from an expensive preprocessing
protocol; Prio's key trick (Section 4, Step 3b) is that the *client*
deals the triple — and the SNIP soundness analysis shows a client who
deals a bad triple (c = ab + alpha, alpha != 0) still fails the
polynomial identity test with overwhelming probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.field.prime_field import FieldError, PrimeField
from repro.sharing.additive import share_scalar


@dataclass(frozen=True)
class BeaverTriple:
    """Plaintext triple; only the client (dealer) ever sees this."""

    a: int
    b: int
    c: int

    def is_valid(self, field: PrimeField) -> bool:
        return field.mul(self.a, self.b) == self.c % field.modulus


@dataclass(frozen=True)
class BeaverTripleShare:
    """One server's additive share of a triple."""

    a: int
    b: int
    c: int


def generate_triple(field: PrimeField, rng) -> BeaverTriple:
    """Deal a fresh random triple with ``c = a * b``."""
    a = field.rand(rng)
    b = field.rand(rng)
    return BeaverTriple(a=a, b=b, c=field.mul(a, b))


def share_triple(
    field: PrimeField, triple: BeaverTriple, n_servers: int, rng
) -> list[BeaverTripleShare]:
    """Additively share a triple among ``n_servers``."""
    a_shares = share_scalar(field, triple.a, n_servers, rng)
    b_shares = share_scalar(field, triple.b, n_servers, rng)
    c_shares = share_scalar(field, triple.c, n_servers, rng)
    return [
        BeaverTripleShare(a=a, b=b, c=c)
        for a, b, c in zip(a_shares, b_shares, c_shares)
    ]


def multiply_round1(
    field: PrimeField,
    y_share: int,
    z_share: int,
    triple_share: BeaverTripleShare,
) -> tuple[int, int]:
    """First (and only) broadcast: masked differences (d_i, e_i)."""
    d = field.sub(y_share, triple_share.a)
    e = field.sub(z_share, triple_share.b)
    return d, e


def multiply_finalize(
    field: PrimeField,
    d_shares: Sequence[int],
    e_shares: Sequence[int],
    triple_share: BeaverTripleShare,
    n_servers: int,
) -> int:
    """Combine broadcast shares into this server's share of ``y * z``.

    Every server runs this with the same reconstructed ``d`` and ``e``;
    the ``d*e/s`` term is added by all ``s`` servers so it enters the
    total exactly once (the paper's Appendix C.2 formula).
    """
    if len(d_shares) != n_servers or len(e_shares) != n_servers:
        raise FieldError("need one d/e share from every server")
    p = field.modulus
    d = sum(d_shares) % p
    e = sum(e_shares) % p
    s_inv = pow(n_servers % p, -1, p)
    return (
        d * e % p * s_inv
        + d * triple_share.b
        + e * triple_share.a
        + triple_share.c
    ) % p
