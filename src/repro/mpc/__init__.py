"""Beaver-triple MPC: share multiplication and full circuit evaluation."""

from repro.mpc.beaver import (
    BeaverTriple,
    BeaverTripleShare,
    generate_triple,
    multiply_finalize,
    multiply_round1,
    share_triple,
)
from repro.mpc.circuit_mpc import (
    CircuitMpcParty,
    MpcResult,
    mul_gate_levels,
    multiplicative_depth,
    run_circuit_mpc,
)

__all__ = [
    "BeaverTriple",
    "BeaverTripleShare",
    "generate_triple",
    "multiply_finalize",
    "multiply_round1",
    "share_triple",
    "CircuitMpcParty",
    "MpcResult",
    "mul_gate_levels",
    "multiplicative_depth",
    "run_circuit_mpc",
]
