"""Plane-resident batched SNIP proving — the client half of the plane
pipeline.

PRs 1-4 made the *server* side plane-resident from socket bytes to
``publish()``; this module gives the client's Section 4.2 work (evaluate
Valid, build the randomized f/g polynomials, h = f * g) the same
treatment.  A batch of submissions flows

    values ──afe.encode──► encodings (Python ints, per value)
           ──compiled-plan sweep──► (B, M) mul-input planes + validity
           (u0/v0/Beaver triples drawn per value, scalar order)
           ──h_planes_batch──► one (2B, N) batch NTT pair, h as planes
           ──submission_planes──► (B, k + proof_len) x||proof matrix
           ──share_vectors_client_batch──► PRG seeds + explicit planes
           ──encode_bytes_batch──► wire bodies

with the deterministic polynomial work batched across the whole
submission set and no per-element Python-int crossing between the
circuit trace and the wire bytes.

Draw-order contract
-------------------

Everything here preserves *scalar rng order*: the per-submission
randomness (the AFE encoding happens outside, then f(0), g(0), the
Beaver triple) is drawn submission by submission, in exactly the order
sequential :func:`repro.snip.prover.build_proof` calls would draw it.
The deterministic work — interpolation, the double-domain evaluation,
h = f * g, the last additive share — carries no randomness at all,
which is what lets it batch freely *after* the draws.  The client
differential suite (``tests/snip/test_client_batch_equivalence.py``)
asserts bit-identity of the resulting uploads against the scalar
client on both backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.circuit import Circuit
from repro.field.batch import BatchVector, concat_columns, stack_rows
from repro.field.ntt import EvaluationDomain
from repro.field.prime_field import PrimeField
from repro.mpc.beaver import BeaverTriple, generate_triple
from repro.snip.proof import SnipError, snip_domain_sizes

__all__ = [
    "ProofRandomness",
    "draw_proof_randomness",
    "h_planes_batch",
    "submission_planes",
]


@dataclass(frozen=True)
class ProofRandomness:
    """One submission's client-drawn proof randomness, in draw order.

    ``u0 = f(0)``, ``v0 = g(0)`` (the zero-knowledge masks), then the
    Beaver triple — exactly the values, and exactly the order,
    :func:`repro.snip.prover.build_proof` draws them.
    """

    u0: int
    v0: int
    triple: BeaverTriple


def draw_proof_randomness(
    field: PrimeField,
    circuit: Circuit,
    x: Sequence[int],
    rng,
    check_valid: bool = True,
):
    """Evaluate ``Valid(x)`` and draw one proof's randomness, scalar order.

    Returns ``(trace, ProofRandomness | None)`` — ``None`` for
    multiplication-free circuits, which need no polynomial identity
    test (and whose :func:`build_proof` draws nothing).  Raising on an
    invalid input happens *before* any draw, so a batched caller that
    loops this per submission leaves the rng at exactly the state a
    failing scalar :func:`build_proof` call would.
    """
    trace = circuit.evaluate(field, x)
    if check_valid and not trace.is_valid:
        raise SnipError(
            f"input does not satisfy {circuit.name}; refusing to prove"
        )
    if circuit.n_mul_gates == 0:
        return trace, None
    u0 = field.rand(rng)
    v0 = field.rand(rng)
    return trace, ProofRandomness(
        u0=u0, v0=v0, triple=generate_triple(field, rng)
    )


def h_planes_batch(
    field: PrimeField,
    circuit: Circuit,
    traces,
    randoms: "Sequence[ProofRandomness]",
    force_pure: bool | None = None,
) -> BatchVector:
    """The deterministic prover sweep for ``B`` traces: h as ``(B, 2N)``.

    All ``f`` and ``g`` evaluation rows ride one ``(2B, N)`` batch
    through a single interpolate/evaluate NTT pair, and ``h = f * g``
    is one plane Hadamard product — bit-identical to what per-proof
    :func:`repro.snip.prover.build_proof` computes, but the values
    never leave limb planes.

    ``traces`` is either a list of scalar
    :class:`~repro.circuit.circuit.EvaluationTrace` objects (one per
    submission) or a single plane-resident
    :class:`~repro.circuit.compiled.BatchTrace` from a compiled plan —
    in the latter case the f/g blocks assemble by plane copy from the
    trace's ``(B, M)`` mul-input matrices and only the per-submission
    ``u0``/``v0`` scalars are encoded from ints.
    """
    from repro.circuit.compiled import BatchTrace

    m = circuit.n_mul_gates
    size_n, size_2n = snip_domain_sizes(m)
    if isinstance(traces, BatchTrace):
        B = len(traces)
        if m == 0 or B == 0:
            return BatchVector.zeros(field, (B, size_2n), force_pure)
        if force_pure is None:
            force_pure = traces.mul_inputs_left.force_pure
        pad = BatchVector.zeros(field, (B, size_n - m - 1), force_pure)
        f_block = concat_columns(
            field,
            [[[r.u0] for r in randoms], traces.mul_inputs_left, pad],
            force_pure,
        )
        g_block = concat_columns(
            field,
            [[[r.v0] for r in randoms], traces.mul_inputs_right, pad],
            force_pure,
        )
        fg = stack_rows([f_block, g_block])
    else:
        traces = list(traces)
        B = len(traces)
        if m == 0 or B == 0:
            return BatchVector.zeros(field, (B, size_2n), force_pure)
        pad = [0] * (size_n - m - 1)
        rows = [
            [r.u0] + trace.mul_inputs_left + pad
            for r, trace in zip(randoms, traces)
        ]
        rows += [
            [r.v0] + trace.mul_inputs_right + pad
            for r, trace in zip(randoms, traces)
        ]
        fg = BatchVector.from_ints(field, rows, force_pure)
    domain_n = EvaluationDomain(field, size_n)
    domain_2n = EvaluationDomain(field, size_2n)
    # The double domain's even points coincide with the small domain
    # (w_2N^2 = w_N), so h's even evaluations are free products of the
    # *input* rows: h[2i] = f_evals[i] * g_evals[i].  Only the odd
    # points need polynomial work — f(w_2N * w_N^j) = NTT_N of the
    # w_2N^k-twisted coefficients — so the forward transform is size N,
    # not 2N (the inverse transform's 1/N scale folds into the twist).
    p = field.modulus
    even = fg.take_rows(range(B)) * fg.take_rows(range(B, 2 * B))
    coeffs_scaled = fg.ntt(pow(domain_n.root, -1, p))  # N * coefficients
    w2 = domain_2n.root
    n_inv = pow(size_n, -1, p)
    twist = [n_inv] * size_n
    for k in range(1, size_n):
        twist[k] = twist[k - 1] * w2 % p
    odd_evals = coeffs_scaled.mul_row(twist).ntt(domain_n.root)
    odd = odd_evals.take_rows(range(B)) * odd_evals.take_rows(
        range(B, 2 * B)
    )
    from repro.field.batch import interleave_columns

    return interleave_columns(even, odd)


def submission_planes(
    field: PrimeField,
    circuit: Circuit,
    encodings: Sequence[Sequence[int]],
    randoms: "Sequence[ProofRandomness | None]",
    h: BatchVector,
    force_pure: bool | None = None,
) -> BatchVector:
    """Assemble the ``(B, k + proof_len)`` ``x || flatten(proof)`` matrix.

    Row ``i`` is bit-identical to ``list(encodings[i]) +
    SnipProof(...).flatten()`` for the proof built from ``randoms[i]``
    and row ``i`` of ``h`` — the canonical vector the client PRG-shares
    and frames.  Only the (inherently scalar) encodings and the five
    per-submission proof scalars are encoded from ints; ``h``, the bulk
    of the proof, joins by plane copy.
    """
    encodings = [list(e) for e in encodings]
    B = len(encodings)
    if circuit.n_mul_gates == 0:
        # flatten() of the empty proof: f0 g0 (no h) a b c — all zero.
        return concat_columns(
            field, [encodings, [[0] * 5 for _ in range(B)]], force_pure
        )
    head = [
        enc + [r.u0, r.v0] for enc, r in zip(encodings, randoms)
    ]
    tail = [[r.triple.a, r.triple.b, r.triple.c] for r in randoms]
    return concat_columns(field, [head, h, tail], force_pure)
