"""SNIP proof objects and their share layout.

A SNIP proof (Section 4.2) is the client-produced tuple

    pi = ( f(0), g(0), h, a, b, c )

where f and g are the randomized polynomials through the left/right
input wires of the Valid circuit's multiplication gates, h = f * g, and
(a, b, c) is a Beaver multiplication triple dealt by the client.

Following the Appendix I optimizations that the paper's own prototype
uses, this implementation:

* places the multiplication-gate wire values on a radix-2 NTT domain of
  size ``N = next_pow2(M + 1)`` (index 0 holds the random mask, indices
  1..M the wire values, the tail is zero padding), and
* ships ``h`` in *point-value form* over the double domain of size
  ``2N``, whose even-indexed points coincide with the small domain —
  so servers read each multiplication gate's output-wire share directly
  from ``h_evals[2t]`` with no interpolation at all.

``flatten``/``unflatten`` give the canonical field-element vector
layout used for PRG share compression and the wire format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.field.ntt import next_power_of_two
from repro.field.prime_field import FieldError, PrimeField
from repro.mpc.beaver import BeaverTriple, BeaverTripleShare


class SnipError(ValueError):
    """Raised for malformed proofs or protocol misuse."""


def snip_domain_sizes(n_mul_gates: int) -> tuple[int, int]:
    """(N, 2N) domain sizes for a circuit with M multiplication gates.

    M = 0 circuits need no polynomial test at all; both sizes are 0.
    """
    if n_mul_gates == 0:
        return 0, 0
    n = next_power_of_two(n_mul_gates + 1)
    return n, 2 * n


def proof_num_elements(n_mul_gates: int) -> int:
    """Length of the flattened proof share in field elements.

    f(0), g(0), the 2N evaluations of h, and the triple (a, b, c).
    This is the client->server SNIP overhead the paper's Figure 6
    accounts under "Prio".
    """
    _, size_2n = snip_domain_sizes(n_mul_gates)
    return 2 + size_2n + 3


@dataclass
class SnipProof:
    """The plaintext proof; exists only inside the client."""

    f0: int
    g0: int
    h_evals: list[int]
    triple: BeaverTriple

    def flatten(self) -> list[int]:
        """Same canonical layout as :meth:`SnipProofShare.flatten`.

        The protocol layer concatenates ``x || flatten(proof)`` into a
        single vector and PRG-shares the whole thing, so proof shares
        come out of the same seeds as data shares.
        """
        return [
            self.f0, self.g0, *self.h_evals,
            self.triple.a, self.triple.b, self.triple.c,
        ]


@dataclass
class SnipProofShare:
    """One server's additive share of a SNIP proof."""

    f0: int
    g0: int
    h_evals: list[int]
    a: int
    b: int
    c: int

    @property
    def triple_share(self) -> BeaverTripleShare:
        return BeaverTripleShare(a=self.a, b=self.b, c=self.c)

    def flatten(self) -> list[int]:
        """Canonical vector layout: [f0, g0, h_evals..., a, b, c]."""
        return [self.f0, self.g0, *self.h_evals, self.a, self.b, self.c]

    @classmethod
    def unflatten(
        cls, field: PrimeField, elements: Sequence[int], n_mul_gates: int
    ) -> "SnipProofShare":
        expected = proof_num_elements(n_mul_gates)
        if len(elements) != expected:
            raise SnipError(
                f"proof share for M={n_mul_gates} needs {expected} "
                f"elements, got {len(elements)}"
            )
        p = field.modulus
        elements = [e % p for e in elements]
        _, size_2n = snip_domain_sizes(n_mul_gates)
        return cls(
            f0=elements[0],
            g0=elements[1],
            h_evals=list(elements[2 : 2 + size_2n]),
            a=elements[-3],
            b=elements[-2],
            c=elements[-1],
        )

    def mul_output_shares(self, n_mul_gates: int) -> list[int]:
        """Shares of the M multiplication-gate output wires.

        Gate t (1-based) lives at small-domain point t, which is
        double-domain point 2t — hence ``h_evals[2 * t]``.
        """
        if n_mul_gates == 0:
            return []
        size_n, size_2n = snip_domain_sizes(n_mul_gates)
        if len(self.h_evals) != size_2n:
            raise SnipError(
                f"h_evals has {len(self.h_evals)} entries, expected {size_2n}"
            )
        del size_n
        return [self.h_evals[2 * t] for t in range(1, n_mul_gates + 1)]
