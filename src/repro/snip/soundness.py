"""The Appendix D.1 soundness experiment, as an executable artifact.

The paper's soundness theorem: for any (even unbounded) cheating
client, the servers accept an invalid submission with probability at
most ``(2M + 1) / |F|`` over the verifier's random point ``r``.  This
module runs that game empirically: an adversary strategy produces
shares, the servers verify with *fresh* randomness each trial, and the
measured acceptance rate is compared against the bound.

Used by the soundness tests and runnable on deliberately small fields,
where the bound is large enough to observe (on the 87-bit production
field the acceptance probability is ~2^-80 and every trial rejects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.circuit.circuit import Circuit
from repro.field.prime_field import PrimeField
from repro.snip.proof import SnipProofShare
from repro.snip.verifier import (
    ServerRandomness,
    VerificationContext,
    verify_snip,
)

#: An adversary returns per-server (x_share, proof_share) lists.
AdversaryStrategy = Callable[
    [int], tuple[Sequence[Sequence[int]], Sequence[SnipProofShare]]
]


@dataclass
class SoundnessReport:
    trials: int
    accepted: int
    theoretical_bound: float

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.trials if self.trials else 0.0

    @property
    def within_bound(self) -> bool:
        """Generous statistical check: observed rate below 3x the bound
        plus Poisson slack (so a correct implementation essentially
        never flags, a broken one essentially always does)."""
        slack = 3.0 * max(self.theoretical_bound * self.trials, 1.0)
        return self.accepted <= slack

    def __str__(self) -> str:
        return (
            f"SoundnessReport(trials={self.trials}, accepted={self.accepted}, "
            f"rate={self.acceptance_rate:.2e}, "
            f"bound={self.theoretical_bound:.2e})"
        )


def run_soundness_experiment(
    field: PrimeField,
    circuit: Circuit,
    adversary: AdversaryStrategy,
    trials: int,
    seed: bytes = b"soundness-game",
) -> SoundnessReport:
    """Play the Appendix D.1 game ``trials`` times.

    Each trial: the adversary commits to shares *first* (it receives
    only the trial index), then the servers sample their challenge —
    the ordering the soundness proof requires.
    """
    accepted = 0
    for trial in range(trials):
        x_shares, proof_shares = adversary(trial)
        randomness = ServerRandomness(seed + trial.to_bytes(4, "big"))
        challenge = randomness.challenge(field, circuit, epoch=trial)
        ctx = VerificationContext(field, circuit, challenge)
        if verify_snip(ctx, x_shares, proof_shares).accepted:
            accepted += 1
    bound = (2 * circuit.n_mul_gates + 1) / field.modulus
    return SoundnessReport(
        trials=trials, accepted=accepted, theoretical_bound=bound
    )
