"""The SNIP zero-knowledge simulator (Appendix D.2).

The zero-knowledge property says: a malicious server's entire view of
the verification protocol can be reproduced by a simulator that never
sees the client's input ``x``.  This module implements that simulator
for the two-server case (one honest, one adversarial server — the
general case reduces to it because all values are additively shared).

The simulated view consists of everything the adversarial server
receives:

* its own shares of ``x`` and of the proof (uniformly random — real
  additive shares are uniform), and
* the honest server's two broadcast messages, generated from freshly
  sampled ``f(r), g(r)`` (uniform in the real world too, thanks to the
  random masks f(0), g(0)) and from the *consistency relations* the
  real protocol guarantees.

Tests compare real and simulated view distributions; the library also
uses the simulator inline as an executable statement of what the
protocol is allowed to leak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit, batched_assertion_share
from repro.field.prime_field import PrimeField
from repro.snip.proof import SnipProofShare, snip_domain_sizes
from repro.snip.verifier import (
    Round1Message,
    Round2Message,
    SnipVerifierParty,
    VerificationContext,
)


@dataclass
class AdversaryView:
    """What the adversarial server sees during one verification."""

    x_share: list[int]
    proof_share: SnipProofShare
    honest_round1: Round1Message
    honest_round2: Round2Message


class SnipSimulator:
    """Produces adversary views without access to the client's input."""

    def __init__(self, ctx: VerificationContext, rng) -> None:
        self.ctx = ctx
        self.rng = rng

    def simulate(
        self,
        adversary_delta_d: int = 0,
        adversary_delta_e: int = 0,
    ) -> AdversaryView:
        """Simulate the view of an adversary who shifts its round-1
        broadcast by (delta_d, delta_e); (0, 0) is an honest-but-curious
        server."""
        ctx = self.ctx
        field = ctx.field
        circuit = ctx.circuit
        rng = self.rng
        p = field.modulus
        m = ctx.n_mul_gates
        _, size_2n = snip_domain_sizes(m)

        # The adversary's own shares are uniform in the real protocol.
        x_share = field.rand_vector(circuit.n_inputs, rng)
        adv_share = SnipProofShare(
            f0=field.rand(rng),
            g0=field.rand(rng),
            h_evals=field.rand_vector(size_2n, rng),
            a=field.rand(rng),
            b=field.rand(rng),
            c=field.rand(rng),
        )

        # What an honest holder of these shares would compute locally.
        adv_party = SnipVerifierParty(
            ctx, server_index=1, n_servers=2,
            x_share=x_share, proof_share=adv_share,
        )
        adv_round1 = adv_party.round1()
        adv_f_r = adv_party._f_r
        adv_rg_r = adv_party._rg_r
        adv_rh_r = adv_party._rh_r
        adv_assertion = adv_party._assertion_share

        if m == 0:
            honest_round1 = Round1Message(d=0, e=0)
            honest_round2 = Round2Message(
                sigma=0, assertion=field.neg(adv_assertion)
            )
            return AdversaryView(
                x_share=x_share,
                proof_share=adv_share,
                honest_round1=honest_round1,
                honest_round2=honest_round2,
            )

        # Sample the protocol-wide secrets the way the real world
        # distributes them: f(r), g(r) uniform; triple valid.
        r = ctx.challenge.r
        f_r = field.rand(rng)
        g_r = field.rand(rng)
        h_r = field.mul(f_r, g_r)  # honest client: h = f * g
        a = field.rand(rng)
        b = field.rand(rng)
        c = field.mul(a, b)

        honest_a = field.sub(a, adv_share.a)
        honest_b = field.sub(b, adv_share.b)
        honest_c = field.sub(c, adv_share.c)
        honest_f_r = field.sub(f_r, adv_f_r)
        honest_rg_r = field.sub((r * g_r) % p, adv_rg_r)
        honest_rh_r = field.sub((r * h_r) % p, adv_rh_r)

        honest_round1 = Round1Message(
            d=field.sub(honest_f_r, honest_a),
            e=field.sub(honest_rg_r, honest_b),
        )

        # Adversary's (possibly shifted) broadcast, then the honest
        # server's round-2 response per the real combining rule.
        d_hat = (adv_round1.d + adversary_delta_d + honest_round1.d) % p
        e_hat = (adv_round1.e + adversary_delta_e + honest_round1.e) % p
        s_inv = pow(2, -1, p)
        honest_sigma = (
            d_hat * e_hat % p * s_inv
            + d_hat * honest_b
            + e_hat * honest_a
            + honest_c
            - honest_rh_r
        ) % p
        # Valid input: assertion shares across servers sum to zero.
        honest_round2 = Round2Message(
            sigma=honest_sigma, assertion=field.neg(adv_assertion)
        )
        return AdversaryView(
            x_share=x_share,
            proof_share=adv_share,
            honest_round1=honest_round1,
            honest_round2=honest_round2,
        )


def real_adversary_view(
    ctx: VerificationContext,
    x: list[int],
    rng,
    adversary_delta_d: int = 0,
    adversary_delta_e: int = 0,
) -> AdversaryView:
    """Run the *real* two-server protocol on input ``x`` and record the
    adversary's view, for distribution comparison against the simulator."""
    from repro.snip.prover import prove_and_share  # local to avoid cycle

    field = ctx.field
    x_shares, proof_shares = prove_and_share(field, ctx.circuit, x, 2, rng)
    honest = SnipVerifierParty(ctx, 0, 2, x_shares[0], proof_shares[0])
    adversary = SnipVerifierParty(ctx, 1, 2, x_shares[1], proof_shares[1])
    honest_r1 = honest.round1()
    adv_r1 = adversary.round1()
    shifted = Round1Message(
        d=field.add(adv_r1.d, adversary_delta_d),
        e=field.add(adv_r1.e, adversary_delta_e),
    )
    honest_r2 = honest.round2([honest_r1, shifted])
    return AdversaryView(
        x_share=list(x_shares[1]),
        proof_share=proof_shares[1],
        honest_round1=honest_r1,
        honest_round2=honest_r2,
    )
