"""The "Prio-MPC" variant (Section 4.4, Appendix E).

When the Valid predicate is a server-side secret (e.g. a proprietary
spam filter), the client cannot evaluate it and therefore cannot build
a SNIP for it.  Instead:

1. the client deals one Beaver triple per multiplication gate of the
   (to-it-unknown-size) Valid circuit, and proves *with an ordinary
   SNIP* that every dealt triple really satisfies ``c_t = a_t * b_t``
   (the triple-validity circuit has exactly M multiplication gates);
2. the servers, having verified the triples, run Beaver's MPC
   (:mod:`repro.mpc.circuit_mpc`) over the Valid circuit on the shared
   client input, consuming the dealt triples;
3. the servers publish a random linear combination of their assertion
   shares and accept iff it sums to zero.

Costs match the paper's comparison: server-to-server traffic grows to
Theta(M) elements (Figure 6's top curve) and privacy holds only against
honest-but-curious servers, but the client no longer needs to know the
circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.circuit import Circuit, CircuitBuilder
from repro.field.prime_field import PrimeField
from repro.mpc.beaver import BeaverTriple, BeaverTripleShare, generate_triple
from repro.mpc.circuit_mpc import run_circuit_mpc
from repro.sharing.additive import share_vector
from repro.snip.proof import SnipError, SnipProofShare
from repro.snip.prover import build_proof, share_proof
from repro.snip.verifier import (
    ServerRandomness,
    VerificationContext,
    VerificationOutcome,
    verify_snip,
)


def build_triple_validity_circuit(field: PrimeField, n_triples: int) -> Circuit:
    """Circuit over the flattened triples asserting ``a_t * b_t = c_t``.

    Input layout: ``[a_1, b_1, c_1, ..., a_M, b_M, c_M]``; exactly one
    multiplication gate per triple.
    """
    if n_triples < 1:
        raise SnipError("need at least one triple")
    builder = CircuitBuilder(field, name=f"triple-validity-{n_triples}")
    for _ in range(n_triples):
        a, b, c = builder.inputs(3)
        builder.assert_zero(builder.sub(builder.mul(a, b), c))
    return builder.build()


@dataclass
class MpcSubmissionShare:
    """One server's slice of a Prio-MPC client upload."""

    x_share: list[int]
    triple_vector_share: list[int]
    triple_proof_share: SnipProofShare | None

    def triple_shares(self) -> list[BeaverTripleShare]:
        flat = self.triple_vector_share
        if len(flat) % 3 != 0:
            raise SnipError("triple vector length not a multiple of 3")
        return [
            BeaverTripleShare(a=flat[i], b=flat[i + 1], c=flat[i + 2])
            for i in range(0, len(flat), 3)
        ]


def build_mpc_submission(
    field: PrimeField,
    n_mul_gates: int,
    x: Sequence[int],
    n_servers: int,
    rng,
) -> list[MpcSubmissionShare]:
    """Client side: share x, deal M proven-valid triples.

    The client only needs ``n_mul_gates`` (the circuit's size), not the
    circuit itself — that is the entire point of the variant.
    """
    x_shares = share_vector(field, list(x), n_servers, rng)
    if n_mul_gates == 0:
        return [
            MpcSubmissionShare(
                x_share=x_shares[i],
                triple_vector_share=[],
                triple_proof_share=None,
            )
            for i in range(n_servers)
        ]
    triples = [generate_triple(field, rng) for _ in range(n_mul_gates)]
    flat: list[int] = []
    for t in triples:
        flat.extend((t.a, t.b, t.c))
    triple_circuit = build_triple_validity_circuit(field, n_mul_gates)
    proof = build_proof(field, triple_circuit, flat, rng)
    proof_shares = share_proof(field, proof, n_servers, rng)
    flat_shares = share_vector(field, flat, n_servers, rng)
    return [
        MpcSubmissionShare(
            x_share=x_shares[i],
            triple_vector_share=flat_shares[i],
            triple_proof_share=proof_shares[i],
        )
        for i in range(n_servers)
    ]


@dataclass
class MpcVerificationOutcome:
    accepted: bool
    triple_check: VerificationOutcome | None
    assertion_total: int
    n_rounds: int
    #: field elements broadcast per server (SNIP + MPC + final check)
    elements_broadcast_per_server: int


def verify_mpc_submission(
    field: PrimeField,
    circuit: Circuit,
    submission_shares: Sequence[MpcSubmissionShare],
    randomness: ServerRandomness,
    epoch: int = 0,
) -> MpcVerificationOutcome:
    """Server side: SNIP-check the triples, then MPC-evaluate Valid."""
    n_servers = len(submission_shares)
    m = circuit.n_mul_gates

    triple_outcome: VerificationOutcome | None = None
    if m > 0:
        triple_circuit = build_triple_validity_circuit(field, m)
        challenge = randomness.challenge(field, triple_circuit, epoch)
        ctx = VerificationContext(field, triple_circuit, challenge)
        proof_shares = []
        for share in submission_shares:
            if share.triple_proof_share is None:
                raise SnipError("missing triple proof share")
            proof_shares.append(share.triple_proof_share)
        triple_outcome = verify_snip(
            ctx,
            [s.triple_vector_share for s in submission_shares],
            proof_shares,
        )
        if not triple_outcome.accepted:
            return MpcVerificationOutcome(
                accepted=False,
                triple_check=triple_outcome,
                assertion_total=0,
                n_rounds=0,
                elements_broadcast_per_server=4,
            )

    results = run_circuit_mpc(
        field,
        circuit,
        [s.x_share for s in submission_shares],
        [s.triple_shares() for s in submission_shares],
    )

    # Batched zero-check over assertion shares (same RLC trick).
    challenge = randomness.challenge(field, circuit, epoch)
    coefficients = list(challenge.assertion_coefficients)
    p = field.modulus
    total = 0
    for result in results:
        total += field.inner_product(coefficients, result.assertion_shares)
    total %= p
    per_server = 4 + results[0].elements_broadcast + 1
    return MpcVerificationOutcome(
        accepted=(total == 0),
        triple_check=triple_outcome,
        assertion_total=total,
        n_rounds=results[0].n_rounds,
        elements_broadcast_per_server=per_server,
    )


def mpc_upload_elements(n_inputs: int, n_mul_gates: int) -> int:
    """Client->server upload in field elements (Figure 6 accounting)."""
    from repro.snip.proof import proof_num_elements

    if n_mul_gates == 0:
        return n_inputs
    return n_inputs + 3 * n_mul_gates + proof_num_elements(n_mul_gates)
