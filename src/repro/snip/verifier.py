"""SNIP verifier (Section 4.2, Steps 2-4, with Appendix I optimizations).

Each server holds a share of the client's input ``x`` and a share of
the proof.  Verification is two broadcast rounds:

Round 1 (Beaver masking)
    Locally: reconstruct a share of every circuit wire (Step 2), then
    evaluate shares of f, g, h at the secret point ``r`` via
    precomputed Lagrange inner products (no interpolation — Appendix I).
    Broadcast ``d_i = [f(r)]_i - [a]_i`` and ``e_i = [r g(r)]_i - [b]_i``.

Round 2 (polynomial identity test + output check)
    Combine everyone's round-1 messages, produce the Schwartz-Zippel
    share ``sigma_i`` and the batched assertion share ``A_i``
    (the random linear combination of all Valid-circuit zero-assertions,
    Appendix I "circuit optimization").  Broadcast both.

Decision
    Accept iff ``sum_i sigma_i == 0`` and ``sum_i A_i == 0``.

Per-server broadcast traffic: four field elements per submission,
independent of the circuit — the property Figure 6 measures.

The secret point ``r`` and the assertion challenge are derived from a
seed shared among the servers (hidden from clients).  One
:class:`VerificationContext` caches the O(N) Lagrange weights and is
reused across many submissions; rotating contexts every ~2^10
submissions bounds the adaptive-cheating probability at
``(2M+1) * Q / |F|`` exactly as Appendix I argues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.circuit import Circuit
from repro.field.batch import (
    BatchVector,
    PreparedWeights,
    dot_batch_planes,
    tiny_batch_force_pure,
    use_numpy,
)
from repro.field.ntt import EvaluationDomain
from repro.field.prime_field import PrimeField
from repro.snip.proof import (
    SnipError,
    SnipProofShare,
    proof_num_elements,
    snip_domain_sizes,
)


@dataclass(frozen=True)
class VerificationChallenge:
    """Per-epoch secret verifier randomness (unknown to clients)."""

    r: int
    assertion_coefficients: tuple[int, ...]


class ServerRandomness:
    """Derives shared verifier challenges from a common secret seed.

    In deployment the servers agree on the seed over their mutually
    authenticated TLS links at setup; every server then derives the
    *same* challenge for a given epoch without further interaction.
    Clients never see it — soundness only needs ``r`` to be independent
    of the adversarial client's proof (Appendix D.1).
    """

    def __init__(self, seed: bytes) -> None:
        self.seed = seed

    def challenge(
        self, field: PrimeField, circuit: Circuit, epoch: int
    ) -> VerificationChallenge:
        """Challenge for ``epoch``; avoids degenerate evaluation points.

        ``r`` must lie outside the 2N evaluation domain (else the
        Lagrange weights are undefined and zero-knowledge degrades) and
        must be nonzero (at r = 0 the identity test's t-multiplier
        would mask a corrupted Beaver triple).  Deterministic rejection
        sampling keeps all servers in agreement.
        """
        size_n, size_2n = snip_domain_sizes(circuit.n_mul_gates)
        del size_n
        domain = (
            EvaluationDomain(field, size_2n) if size_2n else None
        )
        counter = 0
        label = circuit.name.encode()
        while True:
            r = field.hash_to_element(
                self.seed, b"snip-r", label,
                epoch.to_bytes(8, "big"), counter.to_bytes(4, "big"),
            )
            bad = r == 0 or (domain is not None and domain.contains_point(r))
            if not bad:
                break
            counter += 1
        coefficients = tuple(
            field.hash_to_element(
                self.seed, b"snip-assert", label,
                epoch.to_bytes(8, "big"), j.to_bytes(4, "big"),
            )
            for j in range(len(circuit.assertions))
        )
        return VerificationChallenge(r=r, assertion_coefficients=coefficients)


class VerificationContext:
    """Precomputed per-(circuit, challenge) state shared by all servers.

    Holds the Lagrange inner-product weights for evaluating f, g (small
    domain) and h (double domain) at ``r``.  Building one costs O(N)
    multiplications; verifying each submission with it costs O(N) too,
    with no interpolation — this is the paper's "verification without
    interpolation" optimization, measured in Ablation A.
    """

    def __init__(
        self,
        field: PrimeField,
        circuit: Circuit,
        challenge: VerificationChallenge,
    ) -> None:
        if len(challenge.assertion_coefficients) != len(circuit.assertions):
            raise SnipError("assertion challenge has wrong arity")
        self.field = field
        self.circuit = circuit
        self.challenge = challenge
        self.n_mul_gates = circuit.n_mul_gates
        self.size_n, self.size_2n = snip_domain_sizes(self.n_mul_gates)
        if self.n_mul_gates:
            domain_n = EvaluationDomain(field, self.size_n)
            domain_2n = EvaluationDomain(field, self.size_2n)
            if domain_2n.contains_point(challenge.r) or challenge.r == 0:
                raise SnipError("challenge point r is degenerate")
            self.weights_n = domain_n.lagrange_coefficients_at(challenge.r)
            self.weights_2n = domain_2n.lagrange_coefficients_at(challenge.r)
        else:
            self.weights_n = []
            self.weights_2n = []
        self._functionals: "_BatchFunctionals | None" = None

    def batch_functionals(self) -> "_BatchFunctionals":
        """Per-context linear functionals for batched verification.

        Every quantity a server derives from one submission's share
        vector — [f(r)], r*[g(r)], r*[h(r)], and the batched assertion
        share — is an *affine* function of the flattened upload
        ``z = x_share || proof_share.flatten()`` (multiplication-gate
        outputs are read from h's point-value form, and every other
        wire is affine in inputs and mul outputs).  A single backward
        pass over the circuit per quantity collapses it to one weight
        vector over ``z`` plus a leader-only constant; batch
        verification of B submissions is then four fused inner-product
        sweeps over the (B, len(z)) share matrix.  Built lazily and
        cached: like the Lagrange weights, the functionals are shared
        by every submission verified under this context.
        """
        if self._functionals is None:
            self._functionals = _build_batch_functionals(self)
        return self._functionals


@dataclass
class Round1Message:
    d: int
    e: int


@dataclass
class Round2Message:
    sigma: int
    assertion: int


def _match_backend(
    vector: BatchVector, target: BatchVector
) -> BatchVector:
    """Re-encode ``vector`` onto ``target``'s backend if they differ.

    Both backends are bit-exact, so this changes representation only.
    Needed at the sharded-fan-out seams, where a merged round plane
    (built on the logical server's backend) can meet a tiny shard's
    party whose planes dropped to the pure backend under the
    tiny-batch heuristic.
    """
    if vector.backend == target.backend:
        return vector
    return BatchVector.from_ints(
        vector.field, vector.to_ints(), target.force_pure
    )


def _sum_across_servers(vectors: "Sequence[BatchVector]") -> BatchVector:
    """Plane-add one ``(B,)`` vector per server (the ``sum_i`` of the
    round combination and decision rules)."""
    total = vectors[0]
    for vector in vectors[1:]:
        total = total + _match_backend(vector, total)
    return total


@dataclass
class Round1Batch:
    """A whole batch's round-1 broadcasts in plane form.

    ``d``/``e`` are 1-D ``(B,)`` :class:`~repro.field.batch.BatchVector`
    columns — one per-round plane instead of ``B`` per-submission int
    pairs.  Cross-server combination (the ``sum_i d_i`` of Step 3) is a
    plane add; :meth:`messages`/:meth:`from_messages` are the
    scalar-wire seam for callers that ship individual
    :class:`Round1Message` objects.
    """

    d: BatchVector
    e: BatchVector

    def __len__(self) -> int:
        return self.d.shape[0]

    def at(self, i: int) -> Round1Message:
        return Round1Message(d=self.d.to_ints()[i], e=self.e.to_ints()[i])

    def messages(self) -> list[Round1Message]:
        return [
            Round1Message(d=d, e=e)
            for d, e in zip(self.d.to_ints(), self.e.to_ints())
        ]

    @classmethod
    def from_messages(
        cls,
        field: PrimeField,
        messages: Sequence[Round1Message],
        force_pure: bool | None = None,
    ) -> "Round1Batch":
        return cls(
            d=BatchVector.from_ints(field, [m.d for m in messages], force_pure),
            e=BatchVector.from_ints(field, [m.e for m in messages], force_pure),
        )

    @classmethod
    def zeros(
        cls,
        field: PrimeField,
        batch_size: int,
        force_pure: bool | None = None,
    ) -> "Round1Batch":
        zero = BatchVector.zeros(field, (batch_size,), force_pure)
        return cls(d=zero, e=zero)


@dataclass
class Round2Batch:
    """A whole batch's round-2 broadcasts in plane form.

    Mirror of :class:`Round1Batch` for ``(sigma, assertion)``; the
    accept/reject decision (:meth:`decide_all`) sums the servers'
    planes and runs one vectorized zero test per check — no
    per-submission Python-int crossing anywhere in the round algebra.
    """

    sigma: BatchVector
    assertion: BatchVector

    def __len__(self) -> int:
        return self.sigma.shape[0]

    def at(self, i: int) -> Round2Message:
        return Round2Message(
            sigma=self.sigma.to_ints()[i],
            assertion=self.assertion.to_ints()[i],
        )

    def messages(self) -> list[Round2Message]:
        return [
            Round2Message(sigma=s, assertion=a)
            for s, a in zip(self.sigma.to_ints(), self.assertion.to_ints())
        ]

    @classmethod
    def from_messages(
        cls,
        field: PrimeField,
        messages: Sequence[Round2Message],
        force_pure: bool | None = None,
    ) -> "Round2Batch":
        return cls(
            sigma=BatchVector.from_ints(
                field, [m.sigma for m in messages], force_pure
            ),
            assertion=BatchVector.from_ints(
                field, [m.assertion for m in messages], force_pure
            ),
        )

    @classmethod
    def zeros(
        cls,
        field: PrimeField,
        batch_size: int,
        force_pure: bool | None = None,
    ) -> "Round2Batch":
        zero = BatchVector.zeros(field, (batch_size,), force_pure)
        return cls(sigma=zero, assertion=zero)

    @staticmethod
    def decide_all(round2_batches: "Sequence[Round2Batch]") -> list[bool]:
        """One independent accept/reject per submission (Steps 3a, 4)."""
        if not round2_batches:
            raise SnipError("need a round-2 batch from every server")
        sigma_total = _sum_across_servers([b.sigma for b in round2_batches])
        assertion_total = _sum_across_servers(
            [b.assertion for b in round2_batches]
        )
        return [
            s and a
            for s, a in zip(sigma_total.is_zero(), assertion_total.is_zero())
        ]


class SnipVerifierParty:
    """One server's verification state for a single client submission.

    A thin wrapper over :class:`BatchedSnipVerifierParty` with a batch
    of one — there is no separate scalar round algebra any more; the
    degenerate batch runs the identical plane-resident code path and
    only this seam decodes the four per-submission scalars to ints.
    """

    def __init__(
        self,
        ctx: VerificationContext,
        server_index: int,
        n_servers: int,
        x_share: Sequence[int],
        proof_share: SnipProofShare,
    ) -> None:
        self._batch_party = BatchedSnipVerifierParty(
            ctx, server_index, n_servers, [x_share], [proof_share]
        )
        self.ctx = ctx
        self.field = ctx.field
        self.server_index = server_index
        self.n_servers = n_servers
        self.is_leader = server_index == 0
        self.proof_share = proof_share

    # Scalar views of the party's local state (the ZK simulator builds
    # its simulated honest-server view from exactly these).

    @property
    def _f_r(self) -> int:
        return self._batch_party._f_r.to_ints()[0]

    @property
    def _rg_r(self) -> int:
        return self._batch_party._rg_r.to_ints()[0]

    @property
    def _rh_r(self) -> int:
        return self._batch_party._rh_r.to_ints()[0]

    @property
    def _assertion_share(self) -> int:
        return self._batch_party._assertion_shares.to_ints()[0]

    # ------------------------------------------------------------------

    def round1(self) -> Round1Message:
        """Broadcast the Beaver-masked evaluations (d_i, e_i)."""
        return self._batch_party.round1_all().at(0)

    def round2(self, round1_messages: Sequence[Round1Message]) -> Round2Message:
        """Combine round-1 broadcasts into (sigma_i, A_i)."""
        messages = list(round1_messages)
        if len(messages) != self.n_servers:
            raise SnipError("need a round-1 message from every server")
        return self._batch_party.round2_all([messages]).at(0)

    @staticmethod
    def decide(
        field: PrimeField, round2_messages: Sequence[Round2Message]
    ) -> bool:
        """Accept iff both zero-sum checks pass (Steps 3a and 4)."""
        p = field.modulus
        sigma_total = sum(m.sigma for m in round2_messages) % p
        assertion_total = sum(m.assertion for m in round2_messages) % p
        return sigma_total == 0 and assertion_total == 0


@dataclass
class VerificationOutcome:
    accepted: bool
    sigma_total: int
    assertion_total: int
    #: field elements each server broadcast (d, e, sigma, A)
    elements_broadcast_per_server: int = 4

    def bytes_broadcast_per_server(self, field: PrimeField) -> int:
        return self.elements_broadcast_per_server * field.encoded_size


def verify_snip(
    ctx: VerificationContext,
    x_shares: Sequence[Sequence[int]],
    proof_shares: Sequence[SnipProofShare],
) -> VerificationOutcome:
    """Run the whole verification lock-step across in-process servers."""
    if len(x_shares) != len(proof_shares):
        raise SnipError("share count mismatch")
    return verify_snip_batch(ctx, [(x_shares, proof_shares)])[0]


# ----------------------------------------------------------------------
# Batched verification (the vectorized server hot path)
# ----------------------------------------------------------------------



@dataclass
class _BatchFunctionals:
    """Linear functionals over ``z = x_share || proof_share.flatten()``.

    ``u_rg``/``u_rh`` already include the factor ``r`` (the verifier
    only ever needs ``r*g(r)`` and ``r*h(r)``).  The ``c_*`` constants
    come from CONST gates and are added by the leader only, following
    the share-of-constant convention.  ``u_f``/``u_rg``/``u_rh`` are
    ``None`` for circuits with no multiplication gates (no polynomial
    identity test).
    """

    z_len: int
    u_f: list[int] | None
    u_rg: list[int] | None
    u_rh: list[int] | None
    u_assert: list[int]
    c_f: int
    c_rg: int
    c_assert: int
    _prepared: "PreparedWeights | None" = None

    def prepared(self, field: PrimeField) -> PreparedWeights:
        """The functionals as reusable batch weights (encoded once)."""
        if self._prepared is None:
            if self.u_f is None:
                stack = [self.u_assert]
            else:
                stack = [self.u_f, self.u_rg, self.u_rh, self.u_assert]
            self._prepared = PreparedWeights(field, stack)
        return self._prepared


def _build_batch_functionals(ctx: VerificationContext) -> _BatchFunctionals:
    """Assemble the context's functionals from the compiled plan.

    The plan (:func:`repro.circuit.compiled.compile_circuit`, cached by
    circuit identity) already holds every mul gate's left/right input
    wire and every assertion wire as a *sparse affine form* over
    ``[1 | inputs | mul outputs]`` — the one topological sweep is paid
    once per circuit, not once per verification context.  Building a
    context's functionals is then pure accumulation: scatter each
    form's terms into z positions (input ``i`` at ``i``; mul output
    ``t`` at ``h_pos + 2(t+1)``, its slot in h's point-value form; the
    ones column into the leader-only constant), weighted by the
    context's Lagrange weights / assertion challenge.  By linearity
    this is term-for-term the same sum the previous per-context
    backward adjoint sweep computed, and bit-identical (all arithmetic
    is mod-p on canonical coefficients).
    """
    from repro.circuit.compiled import compile_circuit

    field = ctx.field
    circuit = ctx.circuit
    plan = compile_circuit(field, circuit)
    p = field.modulus
    k = circuit.n_inputs
    m = ctx.n_mul_gates
    z_len = k + proof_num_elements(m)
    # z layout: [x_0..x_{k-1} | f0 | g0 | h_0..h_{2N-1} | a | b | c]
    f0_pos, g0_pos, h_pos = k, k + 1, k + 2

    def accumulate(u, exprs, weights):
        # u += sum_j weights[j] * exprs[j], scattered into z layout;
        # returns the accumulated ones-column (leader constant) part.
        const = 0
        for expr, weight in zip(exprs, weights):
            for src, coeff in expr.items():
                v = coeff * weight
                if src == 0:
                    const += v
                elif src <= k:
                    u[src - 1] += v
                else:
                    # mul gate t (0-based) has its output at
                    # h_evals[2*(t+1)]
                    u[h_pos + 2 * (src - k)] += v
        return const

    def reduced(u):
        return [v % p for v in u]

    u_assert = [0] * z_len
    c_assert = accumulate(
        u_assert, plan.assertion_exprs, ctx.challenge.assertion_coefficients
    )
    u_assert = reduced(u_assert)
    c_assert %= p

    if m == 0:
        return _BatchFunctionals(
            z_len=z_len, u_f=None, u_rg=None, u_rh=None,
            u_assert=u_assert, c_f=0, c_rg=0, c_assert=c_assert,
        )

    r = ctx.challenge.r
    w_n, w_2n = ctx.weights_n, ctx.weights_2n
    u_f = [0] * z_len
    c_f = accumulate(u_f, plan.left_exprs, w_n[1:1 + m]) % p
    u_f[f0_pos] = w_n[0]
    u_f = reduced(u_f)
    u_g = [0] * z_len
    c_g = accumulate(u_g, plan.right_exprs, w_n[1:1 + m]) % p
    u_g[g0_pos] = w_n[0]
    u_rg = [v * r % p for v in u_g]
    u_rh = [0] * z_len
    for j, w in enumerate(w_2n):
        u_rh[h_pos + j] = w * r % p
    return _BatchFunctionals(
        z_len=z_len, u_f=u_f, u_rg=u_rg, u_rh=u_rh, u_assert=u_assert,
        c_f=c_f, c_rg=c_g * r % p, c_assert=c_assert,
    )


class BatchedSnipVerifierParty:
    """One server's verification state for a whole batch of submissions.

    Semantically equivalent to ``B`` scalar verifications — bit-for-bit,
    which the adversarial batch tests assert — but the per-submission
    work collapses to four inner products of the flattened share vector
    against the context's precomputed functionals, evaluated for the
    whole batch in one fused sweep over the (B, len(z)) share matrix
    (:func:`repro.field.batch.dot_batch_planes`).

    Everything stays plane-resident: the functional outputs, the
    Beaver-triple columns (views of the ingested share matrix, never
    decoded), and the round-1/round-2 broadcasts themselves
    (:class:`Round1Batch`/:class:`Round2Batch`).  The zero-copy ingest
    path constructs parties via :meth:`from_share_matrix`; the int-row
    constructor exists for tests and the scalar wrapper.
    """

    def __init__(
        self,
        ctx: VerificationContext,
        server_index: int,
        n_servers: int,
        x_shares: Sequence[Sequence[int]],
        proof_shares: Sequence[SnipProofShare],
        force_pure: bool | None = None,
    ) -> None:
        if len(x_shares) != len(proof_shares):
            raise SnipError("share count mismatch")
        circuit = ctx.circuit
        m = ctx.n_mul_gates
        rows = []
        for x_share, proof_share in zip(x_shares, proof_shares):
            if len(x_share) != circuit.n_inputs:
                raise SnipError(
                    f"x share has {len(x_share)} elements, expected "
                    f"{circuit.n_inputs}"
                )
            if m and len(proof_share.h_evals) != ctx.size_2n:
                raise SnipError(
                    f"h share has {len(proof_share.h_evals)} evaluations, "
                    f"expected {ctx.size_2n}"
                )
            rows.append(list(x_share) + proof_share.flatten())
        self.proof_shares = list(proof_shares)
        if rows:
            force_pure = tiny_batch_force_pure(
                len(rows) * len(rows[0]), force_pure
            )
        self._setup(
            ctx, server_index, n_servers,
            BatchVector.from_ints(ctx.field, rows, force_pure)
            if rows else None,
            batch_size=len(rows),
            force_pure=force_pure,
        )

    @classmethod
    def from_share_matrix(
        cls,
        ctx: VerificationContext,
        server_index: int,
        n_servers: int,
        matrix: BatchVector,
    ) -> "BatchedSnipVerifierParty":
        """Build a party straight from an ingested ``(B, z_len)`` batch.

        ``matrix`` rows are the flattened uploads ``z = x_share ||
        proof_share.flatten()`` exactly as they crossed the wire
        (:func:`repro.protocol.wire.share_vectors_batch`).  No
        per-element Python ints are materialized anywhere — the
        Beaver-triple columns are plane views of the matrix.
        """
        if len(matrix.shape) != 2:
            raise SnipError("share matrix must be 2-D")
        B, width = matrix.shape
        z_len = ctx.circuit.n_inputs + proof_num_elements(ctx.n_mul_gates)
        if width != z_len:
            raise SnipError(
                f"share matrix has width {width}, expected {z_len}"
            )
        self = cls.__new__(cls)
        self.proof_shares = None
        self._setup(
            ctx, server_index, n_servers, matrix if B else None,
            batch_size=B, force_pure=matrix.force_pure if B else None,
        )
        return self

    def _setup(
        self,
        ctx: VerificationContext,
        server_index: int,
        n_servers: int,
        matrix: "BatchVector | None",
        batch_size: int,
        force_pure: bool | None,
    ) -> None:
        if n_servers < 2:
            raise SnipError("a SNIP needs at least two verifiers")
        self.ctx = ctx
        self.field = ctx.field
        self.server_index = server_index
        self.n_servers = n_servers
        self.is_leader = server_index == 0
        self.batch_size = batch_size
        if matrix is not None:
            self._force_pure = matrix.force_pure
        else:
            self._force_pure = None if use_numpy(force_pure) else True

        field = ctx.field
        m = ctx.n_mul_gates
        fns = ctx.batch_functionals()
        if matrix is None:
            zero = BatchVector.zeros(field, (batch_size,), self._force_pure)
            self._f_r = self._rg_r = self._rh_r = zero
            self._assertion_shares = zero
            self._a = self._b = self._c = zero
            return
        dots = dot_batch_planes(field, fns.prepared(field), matrix)
        if m:
            f_r, rg_r, rh_r = dots.row(0), dots.row(1), dots.row(2)
            asserts = dots.row(3)
            if self.is_leader:
                f_r = f_r.add_scalar(fns.c_f)
                rg_r = rg_r.add_scalar(fns.c_rg)
            width = matrix.shape[1]
            self._a = matrix.column(width - 3)
            self._b = matrix.column(width - 2)
            self._c = matrix.column(width - 1)
        else:
            asserts = dots.row(0)
            zero = BatchVector.zeros(field, (batch_size,), self._force_pure)
            f_r = rg_r = rh_r = zero
            self._a = self._b = self._c = zero
        if self.is_leader:
            asserts = asserts.add_scalar(fns.c_assert)
        self._f_r = f_r
        self._rg_r = rg_r
        self._rh_r = rh_r
        self._assertion_shares = asserts
        # The round algebra operates on (B,)-sized vectors.  The fused
        # functional dots above want numpy whenever the matrix does,
        # but at small B the per-op numpy dispatch dwarfs the work, so
        # the round *state* drops to the pure backend (same BatchVector
        # API, bit-exact) below the tiny-batch threshold.
        if self._f_r._numpy and tiny_batch_force_pure(batch_size) is True:
            self._force_pure = True
            for name in (
                "_f_r", "_rg_r", "_rh_r", "_assertion_shares",
                "_a", "_b", "_c",
            ):
                vec = getattr(self, name)
                setattr(
                    self, name,
                    # repro: allow(plane-discipline) - one-time backend
                    # demotion (force_pure), not a per-round hot path
                    BatchVector(field, vec.shape, vec.to_ints(), False),
                )

    # ------------------------------------------------------------------

    def round1_all(self) -> Round1Batch:
        """Round-1 broadcasts for the whole batch, in plane form."""
        if self.ctx.n_mul_gates == 0:
            return Round1Batch.zeros(
                self.field, self.batch_size, self._force_pure
            )
        return Round1Batch(d=self._f_r - self._a, e=self._rg_r - self._b)

    def round2_all(
        self,
        round1: "Sequence[Round1Batch] | Sequence[Sequence[Round1Message]]",
    ) -> Round2Batch:
        """Round-2 broadcasts, given every server's round-1 broadcasts.

        ``round1`` is one :class:`Round1Batch` per server (the plane
        form); per-submission ``Round1Message`` lists (one list per
        submission, the scalar-wire seam) are accepted and converted.
        """
        round1 = list(round1)
        field = self.field
        if round1 and isinstance(round1[0], Round1Batch):
            if len(round1) != self.n_servers:
                raise SnipError("need a round-1 batch from every server")
            for batch in round1:
                if len(batch) != self.batch_size:
                    raise SnipError(
                        "round-1 batch does not cover every submission"
                    )
            d_total = _sum_across_servers([b.d for b in round1])
            e_total = _sum_across_servers([b.e for b in round1])
        else:
            if len(round1) != self.batch_size:
                raise SnipError("need round-1 messages for every submission")
            p = field.modulus
            for msgs in round1:
                if len(msgs) != self.n_servers:
                    raise SnipError(
                        "need a round-1 message from every server"
                    )
            d_total = BatchVector.from_ints(
                field,
                [sum(m.d for m in msgs) % p for msgs in round1],
                self._force_pure,
            )
            e_total = BatchVector.from_ints(
                field,
                [sum(m.e for m in msgs) % p for msgs in round1],
                self._force_pure,
            )
        if self.ctx.n_mul_gates == 0:
            sigma = BatchVector.zeros(
                field, (self.batch_size,), self._force_pure
            )
        else:
            d_total = _match_backend(d_total, self._a)
            e_total = _match_backend(e_total, self._a)
            s_inv = pow(self.n_servers % field.modulus, -1, field.modulus)
            sigma = (
                (d_total * e_total).scale(s_inv)
                + d_total * self._b
                + e_total * self._a
                + self._c
                - self._rh_r
            )
        return Round2Batch(sigma=sigma, assertion=self._assertion_shares)


def verify_snip_batch(
    ctx: VerificationContext,
    submissions: Sequence[
        tuple[Sequence[Sequence[int]], Sequence[SnipProofShare]]
    ],
    force_pure: bool | None = None,
) -> list[VerificationOutcome]:
    """Verify many submissions lock-step, one vectorized sweep per server.

    ``submissions`` holds one ``(x_shares, proof_shares)`` pair per
    client (as produced by :func:`repro.snip.prover.prove_and_share` /
    ``prove_and_share_many``).  Each outcome is decided independently:
    a bad submission in the batch rejects alone.
    """
    if not submissions:
        return []
    n_servers = len(submissions[0][0])
    for x_shares, proof_shares in submissions:
        if len(x_shares) != n_servers or len(proof_shares) != n_servers:
            raise SnipError("inconsistent server count across the batch")
    parties = [
        BatchedSnipVerifierParty(
            ctx, i, n_servers,
            [sub[0][i] for sub in submissions],
            [sub[1][i] for sub in submissions],
            force_pure,
        )
        for i in range(n_servers)
    ]
    round1_by_server = [party.round1_all() for party in parties]
    round2_by_server = [
        party.round2_all(round1_by_server) for party in parties
    ]
    sigma_ints = _sum_across_servers(
        [b.sigma for b in round2_by_server]
    ).to_ints()
    assertion_ints = _sum_across_servers(
        [b.assertion for b in round2_by_server]
    ).to_ints()
    return [
        VerificationOutcome(
            accepted=(s == 0 and a == 0),
            sigma_total=s,
            assertion_total=a,
        )
        for s, a in zip(sigma_ints, assertion_ints)
    ]
