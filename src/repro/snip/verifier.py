"""SNIP verifier (Section 4.2, Steps 2-4, with Appendix I optimizations).

Each server holds a share of the client's input ``x`` and a share of
the proof.  Verification is two broadcast rounds:

Round 1 (Beaver masking)
    Locally: reconstruct a share of every circuit wire (Step 2), then
    evaluate shares of f, g, h at the secret point ``r`` via
    precomputed Lagrange inner products (no interpolation — Appendix I).
    Broadcast ``d_i = [f(r)]_i - [a]_i`` and ``e_i = [r g(r)]_i - [b]_i``.

Round 2 (polynomial identity test + output check)
    Combine everyone's round-1 messages, produce the Schwartz-Zippel
    share ``sigma_i`` and the batched assertion share ``A_i``
    (the random linear combination of all Valid-circuit zero-assertions,
    Appendix I "circuit optimization").  Broadcast both.

Decision
    Accept iff ``sum_i sigma_i == 0`` and ``sum_i A_i == 0``.

Per-server broadcast traffic: four field elements per submission,
independent of the circuit — the property Figure 6 measures.

The secret point ``r`` and the assertion challenge are derived from a
seed shared among the servers (hidden from clients).  One
:class:`VerificationContext` caches the O(N) Lagrange weights and is
reused across many submissions; rotating contexts every ~2^10
submissions bounds the adaptive-cheating probability at
``(2M+1) * Q / |F|`` exactly as Appendix I argues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.circuit import Circuit, batched_assertion_share
from repro.field.ntt import EvaluationDomain
from repro.field.prime_field import PrimeField
from repro.snip.proof import SnipError, SnipProofShare, snip_domain_sizes


@dataclass(frozen=True)
class VerificationChallenge:
    """Per-epoch secret verifier randomness (unknown to clients)."""

    r: int
    assertion_coefficients: tuple[int, ...]


class ServerRandomness:
    """Derives shared verifier challenges from a common secret seed.

    In deployment the servers agree on the seed over their mutually
    authenticated TLS links at setup; every server then derives the
    *same* challenge for a given epoch without further interaction.
    Clients never see it — soundness only needs ``r`` to be independent
    of the adversarial client's proof (Appendix D.1).
    """

    def __init__(self, seed: bytes) -> None:
        self.seed = seed

    def challenge(
        self, field: PrimeField, circuit: Circuit, epoch: int
    ) -> VerificationChallenge:
        """Challenge for ``epoch``; avoids degenerate evaluation points.

        ``r`` must lie outside the 2N evaluation domain (else the
        Lagrange weights are undefined and zero-knowledge degrades) and
        must be nonzero (at r = 0 the identity test's t-multiplier
        would mask a corrupted Beaver triple).  Deterministic rejection
        sampling keeps all servers in agreement.
        """
        size_n, size_2n = snip_domain_sizes(circuit.n_mul_gates)
        del size_n
        domain = (
            EvaluationDomain(field, size_2n) if size_2n else None
        )
        counter = 0
        label = circuit.name.encode()
        while True:
            r = field.hash_to_element(
                self.seed, b"snip-r", label,
                epoch.to_bytes(8, "big"), counter.to_bytes(4, "big"),
            )
            bad = r == 0 or (domain is not None and domain.contains_point(r))
            if not bad:
                break
            counter += 1
        coefficients = tuple(
            field.hash_to_element(
                self.seed, b"snip-assert", label,
                epoch.to_bytes(8, "big"), j.to_bytes(4, "big"),
            )
            for j in range(len(circuit.assertions))
        )
        return VerificationChallenge(r=r, assertion_coefficients=coefficients)


class VerificationContext:
    """Precomputed per-(circuit, challenge) state shared by all servers.

    Holds the Lagrange inner-product weights for evaluating f, g (small
    domain) and h (double domain) at ``r``.  Building one costs O(N)
    multiplications; verifying each submission with it costs O(N) too,
    with no interpolation — this is the paper's "verification without
    interpolation" optimization, measured in Ablation A.
    """

    def __init__(
        self,
        field: PrimeField,
        circuit: Circuit,
        challenge: VerificationChallenge,
    ) -> None:
        if len(challenge.assertion_coefficients) != len(circuit.assertions):
            raise SnipError("assertion challenge has wrong arity")
        self.field = field
        self.circuit = circuit
        self.challenge = challenge
        self.n_mul_gates = circuit.n_mul_gates
        self.size_n, self.size_2n = snip_domain_sizes(self.n_mul_gates)
        if self.n_mul_gates:
            domain_n = EvaluationDomain(field, self.size_n)
            domain_2n = EvaluationDomain(field, self.size_2n)
            if domain_2n.contains_point(challenge.r) or challenge.r == 0:
                raise SnipError("challenge point r is degenerate")
            self.weights_n = domain_n.lagrange_coefficients_at(challenge.r)
            self.weights_2n = domain_2n.lagrange_coefficients_at(challenge.r)
        else:
            self.weights_n = []
            self.weights_2n = []


@dataclass
class Round1Message:
    d: int
    e: int


@dataclass
class Round2Message:
    sigma: int
    assertion: int


class SnipVerifierParty:
    """One server's verification state for a single client submission."""

    def __init__(
        self,
        ctx: VerificationContext,
        server_index: int,
        n_servers: int,
        x_share: Sequence[int],
        proof_share: SnipProofShare,
    ) -> None:
        if n_servers < 2:
            raise SnipError("a SNIP needs at least two verifiers")
        self.ctx = ctx
        self.field = ctx.field
        self.server_index = server_index
        self.n_servers = n_servers
        self.is_leader = server_index == 0
        self.proof_share = proof_share

        field = ctx.field
        circuit = ctx.circuit
        m = ctx.n_mul_gates
        if m and len(proof_share.h_evals) != ctx.size_2n:
            raise SnipError(
                f"h share has {len(proof_share.h_evals)} evaluations, "
                f"expected {ctx.size_2n}"
            )

        mul_out = proof_share.mul_output_shares(m)
        wires = circuit.reconstruct_wire_shares(
            field, x_share, mul_out, is_leader=self.is_leader
        )
        self._assertion_share = batched_assertion_share(
            field, wires.assertion_shares,
            list(ctx.challenge.assertion_coefficients),
        )

        if m:
            pad = [0] * (ctx.size_n - m - 1)
            f_evals_share = [proof_share.f0] + wires.mul_inputs_left + pad
            g_evals_share = [proof_share.g0] + wires.mul_inputs_right + pad
            p = field.modulus
            r = ctx.challenge.r
            self._f_r = field.inner_product(ctx.weights_n, f_evals_share)
            g_r = field.inner_product(ctx.weights_n, g_evals_share)
            h_r = field.inner_product(ctx.weights_2n, proof_share.h_evals)
            self._rg_r = (r * g_r) % p
            self._rh_r = (r * h_r) % p
        else:
            self._f_r = self._rg_r = self._rh_r = 0

    # ------------------------------------------------------------------

    def round1(self) -> Round1Message:
        """Broadcast the Beaver-masked evaluations (d_i, e_i)."""
        if self.ctx.n_mul_gates == 0:
            # No polynomial test: nothing to mask, nothing to leak.
            return Round1Message(d=0, e=0)
        f = self.field
        return Round1Message(
            d=f.sub(self._f_r, self.proof_share.a),
            e=f.sub(self._rg_r, self.proof_share.b),
        )

    def round2(self, round1_messages: Sequence[Round1Message]) -> Round2Message:
        """Combine round-1 broadcasts into (sigma_i, A_i)."""
        if len(round1_messages) != self.n_servers:
            raise SnipError("need a round-1 message from every server")
        f = self.field
        p = f.modulus
        if self.ctx.n_mul_gates == 0:
            sigma = 0
        else:
            d = sum(m.d for m in round1_messages) % p
            e = sum(m.e for m in round1_messages) % p
            s_inv = pow(self.n_servers % p, -1, p)
            share = self.proof_share
            sigma = (
                d * e % p * s_inv
                + d * share.b
                + e * share.a
                + share.c
                - self._rh_r
            ) % p
        return Round2Message(sigma=sigma, assertion=self._assertion_share)

    @staticmethod
    def decide(
        field: PrimeField, round2_messages: Sequence[Round2Message]
    ) -> bool:
        """Accept iff both zero-sum checks pass (Steps 3a and 4)."""
        p = field.modulus
        sigma_total = sum(m.sigma for m in round2_messages) % p
        assertion_total = sum(m.assertion for m in round2_messages) % p
        return sigma_total == 0 and assertion_total == 0


@dataclass
class VerificationOutcome:
    accepted: bool
    sigma_total: int
    assertion_total: int
    #: field elements each server broadcast (d, e, sigma, A)
    elements_broadcast_per_server: int = 4

    def bytes_broadcast_per_server(self, field: PrimeField) -> int:
        return self.elements_broadcast_per_server * field.encoded_size


def verify_snip(
    ctx: VerificationContext,
    x_shares: Sequence[Sequence[int]],
    proof_shares: Sequence[SnipProofShare],
) -> VerificationOutcome:
    """Run the whole verification lock-step across in-process servers."""
    if len(x_shares) != len(proof_shares):
        raise SnipError("share count mismatch")
    n_servers = len(x_shares)
    parties = [
        SnipVerifierParty(ctx, i, n_servers, x_shares[i], proof_shares[i])
        for i in range(n_servers)
    ]
    round1 = [party.round1() for party in parties]
    round2 = [party.round2(round1) for party in parties]
    field = ctx.field
    p = field.modulus
    sigma_total = sum(m.sigma for m in round2) % p
    assertion_total = sum(m.assertion for m in round2) % p
    return VerificationOutcome(
        accepted=(sigma_total == 0 and assertion_total == 0),
        sigma_total=sigma_total,
        assertion_total=assertion_total,
    )
