"""Secret-shared non-interactive proofs — the paper's core contribution."""

from repro.snip.proof import (
    SnipError,
    SnipProof,
    SnipProofShare,
    proof_num_elements,
    snip_domain_sizes,
)
from repro.snip.prover import (
    build_proof,
    prove_and_share,
    prove_and_share_many,
    prove_many,
    share_proof,
)
from repro.snip.reference import (
    ReferenceProof,
    ReferenceProofShare,
    build_reference_proof,
    share_reference_proof,
    verify_reference_snip,
)
from repro.snip.mpc_variant import (
    MpcSubmissionShare,
    MpcVerificationOutcome,
    build_mpc_submission,
    build_triple_validity_circuit,
    mpc_upload_elements,
    verify_mpc_submission,
)
from repro.snip.simulator import AdversaryView, SnipSimulator, real_adversary_view
from repro.snip.soundness import SoundnessReport, run_soundness_experiment
from repro.snip.verifier import (
    BatchedSnipVerifierParty,
    Round1Batch,
    Round1Message,
    Round2Batch,
    Round2Message,
    ServerRandomness,
    SnipVerifierParty,
    VerificationChallenge,
    VerificationContext,
    VerificationOutcome,
    verify_snip,
    verify_snip_batch,
)

__all__ = [
    "SnipError",
    "SnipProof",
    "SnipProofShare",
    "proof_num_elements",
    "snip_domain_sizes",
    "build_proof",
    "prove_and_share",
    "prove_and_share_many",
    "prove_many",
    "share_proof",
    "ReferenceProof",
    "ReferenceProofShare",
    "build_reference_proof",
    "share_reference_proof",
    "verify_reference_snip",
    "MpcSubmissionShare",
    "MpcVerificationOutcome",
    "build_mpc_submission",
    "build_triple_validity_circuit",
    "mpc_upload_elements",
    "verify_mpc_submission",
    "SoundnessReport",
    "run_soundness_experiment",
    "AdversaryView",
    "SnipSimulator",
    "real_adversary_view",
    "BatchedSnipVerifierParty",
    "Round1Batch",
    "Round1Message",
    "Round2Batch",
    "Round2Message",
    "ServerRandomness",
    "SnipVerifierParty",
    "VerificationChallenge",
    "VerificationContext",
    "VerificationOutcome",
    "verify_snip",
    "verify_snip_batch",
]
