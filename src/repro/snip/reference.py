"""Textbook SNIP over the integer points {0, 1, ..., M} (Section 4.2).

This is the construction exactly as the paper's prose describes it:

* f and g are the lowest-degree polynomials with ``f(t) = u_t`` and
  ``g(t) = v_t`` for gate numbers ``t in {1..M}`` and random values at
  ``t = 0``;
* the client ships ``h = f * g`` as a *coefficient vector* of length
  ``2M + 1``;
* each server interpolates its shares of f and g (O(M^2) Lagrange) and
  evaluates its share of h at every gate point (another O(M^2)).

It exists for two reasons: it cross-checks the production NTT variant
(tests assert both accept/reject identically), and it is the baseline
in the "verification without interpolation" ablation benchmark — the
measured gap between this and :mod:`repro.snip.verifier` reproduces
why Appendix I's optimization matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.circuit import Circuit, batched_assertion_share
from repro.field.batch import use_numpy
from repro.field.ntt import next_power_of_two, poly_mul_ntt
from repro.field.poly import (
    lagrange_coefficients_at,
    poly_eval,
    poly_mul,
    lagrange_interpolate,
)
from repro.field.prime_field import PrimeField
from repro.mpc.beaver import BeaverTriple, generate_triple, share_triple
from repro.sharing.additive import share_scalar, share_vector
from repro.snip.proof import SnipError
from repro.snip.verifier import VerificationChallenge, VerificationOutcome


@dataclass
class ReferenceProof:
    f0: int
    g0: int
    h_coeffs: list[int]
    triple: BeaverTriple


@dataclass
class ReferenceProofShare:
    f0: int
    g0: int
    h_coeffs: list[int]
    a: int
    b: int
    c: int


def _poly_product(field: PrimeField, a, b) -> list[int]:
    """``h = f * g`` for the reference prover.

    Uses the batch NTT when the numpy backend is live and the field's
    2-adicity covers the product degree (all production fields);
    schoolbook otherwise (the tiny soundness-test fields with small
    domains, and GF(2)).  Identical coefficients either way.
    """
    if a and b and use_numpy(None):
        size = next_power_of_two(len(a) + len(b) - 1)
        if field.two_adicity >= size.bit_length() - 1:
            return poly_mul_ntt(field, a, b)
    return poly_mul(field, a, b)


def build_reference_proof(
    field: PrimeField,
    circuit: Circuit,
    x: Sequence[int],
    rng,
    check_valid: bool = True,
) -> ReferenceProof:
    """Client side: interpolate f, g over {0..M}; multiply to get h."""
    trace = circuit.evaluate(field, x)
    if check_valid and not trace.is_valid:
        raise SnipError(f"input does not satisfy {circuit.name}")
    m = circuit.n_mul_gates
    if m == 0:
        return ReferenceProof(0, 0, [], BeaverTriple(0, 0, 0))
    points = list(range(m + 1))
    u0 = field.rand(rng)
    v0 = field.rand(rng)
    f_coeffs = lagrange_interpolate(field, points, [u0] + trace.mul_inputs_left)
    g_coeffs = lagrange_interpolate(field, points, [v0] + trace.mul_inputs_right)
    h_coeffs = _poly_product(field, f_coeffs, g_coeffs)
    h_coeffs += [0] * (2 * m + 1 - len(h_coeffs))
    return ReferenceProof(
        f0=u0, g0=v0, h_coeffs=h_coeffs, triple=generate_triple(field, rng)
    )


def share_reference_proof(
    field: PrimeField, proof: ReferenceProof, n_servers: int, rng
) -> list[ReferenceProofShare]:
    f0 = share_scalar(field, proof.f0, n_servers, rng)
    g0 = share_scalar(field, proof.g0, n_servers, rng)
    if proof.h_coeffs:
        h = share_vector(field, proof.h_coeffs, n_servers, rng)
    else:
        h = [[] for _ in range(n_servers)]
    triple = share_triple(field, proof.triple, n_servers, rng)
    return [
        ReferenceProofShare(
            f0=f0[i], g0=g0[i], h_coeffs=h[i],
            a=triple[i].a, b=triple[i].b, c=triple[i].c,
        )
        for i in range(n_servers)
    ]


def verify_reference_snip(
    field: PrimeField,
    circuit: Circuit,
    x_shares: Sequence[Sequence[int]],
    proof_shares: Sequence[ReferenceProofShare],
    challenge: VerificationChallenge,
) -> VerificationOutcome:
    """Server side, run lock-step in-process, with naive interpolation."""
    n_servers = len(x_shares)
    if n_servers < 2:
        raise SnipError("a SNIP needs at least two verifiers")
    m = circuit.n_mul_gates
    p = field.modulus
    r = challenge.r
    if m and r in set(range(1, m + 1)):
        raise SnipError("challenge point r collides with a gate index")

    coeffs = list(challenge.assertion_coefficients)
    sigma_shares = []
    assertion_shares = []
    d_shares: list[int] = []
    e_shares: list[int] = []
    per_server_state = []
    for i in range(n_servers):
        share = proof_shares[i]
        # Multiplication-gate outputs: evaluate [h]_i at t = 1..M.
        mul_out = [poly_eval(field, share.h_coeffs, t) for t in range(1, m + 1)]
        wires = circuit.reconstruct_wire_shares(
            field, x_shares[i], mul_out, is_leader=(i == 0)
        )
        assertion_shares.append(
            batched_assertion_share(field, wires.assertion_shares, coeffs)
        )
        if m:
            points = list(range(m + 1))
            weights = lagrange_coefficients_at(field, points, r)
            f_r = field.inner_product(
                weights, [share.f0] + wires.mul_inputs_left
            )
            g_r = field.inner_product(
                weights, [share.g0] + wires.mul_inputs_right
            )
            rh_r = (r * poly_eval(field, share.h_coeffs, r)) % p
            d_shares.append((f_r - share.a) % p)
            e_shares.append((r * g_r - share.b) % p)
            per_server_state.append((share, rh_r))

    if m == 0:
        sigma_total = 0
    else:
        d = sum(d_shares) % p
        e = sum(e_shares) % p
        s_inv = pow(n_servers % p, -1, p)
        for share, rh_r in per_server_state:
            sigma_shares.append(
                (d * e % p * s_inv + d * share.b + e * share.a + share.c - rh_r)
                % p
            )
        sigma_total = sum(sigma_shares) % p
    assertion_total = sum(assertion_shares) % p
    return VerificationOutcome(
        accepted=(sigma_total == 0 and assertion_total == 0),
        sigma_total=sigma_total,
        assertion_total=assertion_total,
    )
