"""SNIP prover (Section 4.2, Step 1 — "Client evaluation").

The client evaluates the Valid circuit on its own input, so it knows
every wire value.  It then:

1. builds the lowest-degree polynomials f and g through the left/right
   multiplication-gate input wires, with *random* values at the extra
   point (index 0) — the randomization that makes the proof
   zero-knowledge (Appendix D.2, "Why randomize the polynomials?"),
2. multiplies them, h = f * g, so that h's value at gate t's point is
   the gate's true output wire value, and
3. deals a Beaver triple for the verifiers' one share-multiplication.

Cost: one circuit evaluation plus O(M log M) field multiplications for
the three NTTs — the "Muls" column of Table 2.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.circuit import Circuit
from repro.field.batch import BatchVector
from repro.field.ntt import EvaluationDomain
from repro.field.prime_field import PrimeField
from repro.mpc.beaver import BeaverTriple, generate_triple, share_triple
from repro.sharing.additive import (
    share_scalar,
    share_vector,
    share_vectors_explicit_batch,
)
from repro.snip.proof import SnipError, SnipProof, SnipProofShare, snip_domain_sizes


def build_proof(
    field: PrimeField,
    circuit: Circuit,
    x: Sequence[int],
    rng,
    check_valid: bool = True,
) -> SnipProof:
    """Construct the plaintext SNIP proof for input ``x``.

    With ``check_valid=True`` (the default) the prover refuses inputs
    that fail the Valid predicate — an honest client never proves a
    false statement.  Tests of the soundness property disable the check
    and corrupt proofs deliberately.
    """
    trace = circuit.evaluate(field, x)
    if check_valid and not trace.is_valid:
        raise SnipError(
            f"input does not satisfy {circuit.name}; refusing to prove"
        )
    m = circuit.n_mul_gates
    if m == 0:
        # Affine-only circuits need no polynomial identity test.
        return SnipProof(f0=0, g0=0, h_evals=[], triple=BeaverTriple(0, 0, 0))

    size_n, size_2n = snip_domain_sizes(m)
    domain_n = EvaluationDomain(field, size_n)
    domain_2n = EvaluationDomain(field, size_2n)

    u0 = field.rand(rng)
    v0 = field.rand(rng)
    f_evals = [u0] + trace.mul_inputs_left + [0] * (size_n - m - 1)
    g_evals = [v0] + trace.mul_inputs_right + [0] * (size_n - m - 1)

    f_coeffs = domain_n.interpolate(f_evals)
    g_coeffs = domain_n.interpolate(g_evals)

    p = field.modulus
    f_on_2n = domain_2n.evaluate(f_coeffs)
    g_on_2n = domain_2n.evaluate(g_coeffs)
    h_evals = [(a * b) % p for a, b in zip(f_on_2n, g_on_2n)]

    return SnipProof(
        f0=u0, g0=v0, h_evals=h_evals, triple=generate_triple(field, rng)
    )


def prove_many(
    field: PrimeField,
    circuit: Circuit,
    xs: Sequence[Sequence[int]],
    rng,
    check_valid: bool = True,
    force_pure: bool | None = None,
) -> list[SnipProof]:
    """Construct SNIP proofs for many inputs in one vectorized sweep.

    The per-submission randomness (f(0), g(0), the Beaver triple) is
    drawn in exactly the order sequential :func:`build_proof` calls
    would draw it, so ``prove_many(field, c, xs, rng)`` produces
    bit-identical proofs to ``[build_proof(field, c, x, rng) for x in
    xs]`` — even on a mid-batch invalid input, because the circuit
    traces come from one compiled-plan sweep *before* the draw loop
    (evaluation consumes no randomness) and the per-value validity
    check still raises at the scalar draw point.  The deterministic
    polynomial work (the f/g/h double-domain sweep) is batched via
    :func:`repro.snip.batch_prover.h_planes_batch`.
    """
    from repro.circuit.compiled import compile_circuit
    from repro.snip.batch_prover import ProofRandomness, h_planes_batch

    xs = [list(x) for x in xs]
    if not xs:
        return []
    m = circuit.n_mul_gates
    trace = compile_circuit(field, circuit).evaluate_batch(xs, force_pure)
    randoms: list[ProofRandomness] = []
    for i in range(len(xs)):
        if check_valid and not trace.valid[i]:
            raise SnipError(
                f"input does not satisfy {circuit.name}; refusing to prove"
            )
        if m:
            u0 = field.rand(rng)
            v0 = field.rand(rng)
            randoms.append(
                ProofRandomness(
                    u0=u0, v0=v0, triple=generate_triple(field, rng)
                )
            )
    if m == 0:
        return [
            SnipProof(f0=0, g0=0, h_evals=[], triple=BeaverTriple(0, 0, 0))
            for _ in xs
        ]
    h = h_planes_batch(field, circuit, trace, randoms, force_pure)
    return [
        SnipProof(f0=r.u0, g0=r.v0, h_evals=h_row, triple=r.triple)
        for r, h_row in zip(randoms, h.to_ints())
    ]


def share_proof(
    field: PrimeField,
    proof: SnipProof,
    n_servers: int,
    rng,
) -> list[SnipProofShare]:
    """Split a proof into one additive share per server."""
    if n_servers < 2:
        raise SnipError("a SNIP needs at least two verifiers")
    f0_shares = share_scalar(field, proof.f0, n_servers, rng)
    g0_shares = share_scalar(field, proof.g0, n_servers, rng)
    if proof.h_evals:
        h_shares = share_vector(field, proof.h_evals, n_servers, rng)
    else:
        h_shares = [[] for _ in range(n_servers)]
    triple_shares = share_triple(field, proof.triple, n_servers, rng)
    return [
        SnipProofShare(
            f0=f0_shares[i],
            g0=g0_shares[i],
            h_evals=h_shares[i],
            a=triple_shares[i].a,
            b=triple_shares[i].b,
            c=triple_shares[i].c,
        )
        for i in range(n_servers)
    ]


def prove_and_share(
    field: PrimeField,
    circuit: Circuit,
    x: Sequence[int],
    n_servers: int,
    rng,
) -> tuple[list[list[int]], list[SnipProofShare]]:
    """Full client upload: shares of ``x`` and shares of the proof.

    Returns ``(x_shares, proof_shares)``, one entry of each per server.
    """
    x_shares = share_vector(field, list(x), n_servers, rng)
    proof = build_proof(field, circuit, x, rng)
    proof_shares = share_proof(field, proof, n_servers, rng)
    return x_shares, proof_shares


def _draw_proof_share_randoms(
    field: PrimeField, h_len: int, n_servers: int, rng
) -> list[list[int]]:
    """One proof's sharing randomness, in exact :func:`share_proof` order.

    Scalar sharing draws f0 shares across servers, then g0, then each
    server's h vector, then the triple's a/b/c — *not* server-major
    over the flattened proof.  Returns one flatten-layout random row
    per non-final server, so the batched last-share subtraction
    reproduces scalar sharing bit for bit.
    """
    p = field.modulus
    randrange = rng.randrange
    s1 = n_servers - 1
    f0_r = [randrange(p) for _ in range(s1)]
    g0_r = [randrange(p) for _ in range(s1)]
    if h_len:
        h_r = [[randrange(p) for _ in range(h_len)] for _ in range(s1)]
    else:
        h_r = [[] for _ in range(s1)]
    a_r = [randrange(p) for _ in range(s1)]
    b_r = [randrange(p) for _ in range(s1)]
    c_r = [randrange(p) for _ in range(s1)]
    return [
        [f0_r[j], g0_r[j]] + h_r[j] + [a_r[j], b_r[j], c_r[j]]
        for j in range(s1)
    ]


def share_proof_batch(
    field: PrimeField,
    proofs: Sequence[SnipProof],
    n_servers: int,
    rng,
    force_pure: bool | None = None,
) -> list[BatchVector]:
    """Share many proofs at once, plane-resident.

    Returns one ``(B, proof_len)`` :class:`~repro.field.batch.BatchVector`
    per server; row ``i`` of server ``j``'s batch is bit-identical to
    ``share_proof(field, proofs[i], n_servers, rng)[j].flatten()``
    under the same rng — the sharing randomness is drawn per proof in
    scalar order, and the only share arithmetic (the last server's
    ``proof - sum(randoms)``) runs as one plane subtraction per server.
    """
    if n_servers < 2:
        raise SnipError("a SNIP needs at least two verifiers")
    proofs = list(proofs)
    if not proofs:
        return [
            BatchVector.zeros(field, (0, 0), force_pure)
            for _ in range(n_servers)
        ]
    h_len = len(proofs[0].h_evals)
    for proof in proofs:
        if len(proof.h_evals) != h_len:
            raise SnipError("mixed h_evals lengths in proof batch")
    random_rows = [
        _draw_proof_share_randoms(field, h_len, n_servers, rng)
        for _ in proofs
    ]
    return share_vectors_explicit_batch(
        field,
        [proof.flatten() for proof in proofs],
        n_servers,
        random_rows=random_rows,
        force_pure=force_pure,
    )


def prove_and_share_planes(
    field: PrimeField,
    circuit: Circuit,
    xs: Sequence[Sequence[int]],
    n_servers: int,
    rng,
    check_valid: bool = True,
    force_pure: bool | None = None,
) -> list[BatchVector]:
    """Batched full client uploads, plane-resident end to end.

    Returns one ``(B, k + proof_len)`` batch per server; row ``i`` of
    server ``j``'s batch is bit-identical to ``x_shares[j] +
    proof_shares[j].flatten()`` from ``prove_and_share(field, circuit,
    xs[i], n_servers, rng)`` under the same rng.  The per-submission
    randomness — input-share randoms, then f(0)/g(0)/triple, then
    proof-share randoms — is drawn submission by submission in exactly
    scalar order; everything deterministic (the f/g/h NTT sweep via
    :mod:`repro.snip.batch_prover`, the ``x || proof`` assembly, the
    last-share subtraction) is batched across all submissions and
    never crosses to per-element Python ints.
    """
    from repro.circuit.compiled import compile_circuit
    from repro.snip.batch_prover import (
        ProofRandomness,
        h_planes_batch,
        submission_planes,
    )

    if n_servers < 2:
        raise SnipError("a SNIP needs at least two verifiers")
    xs = [list(x) for x in xs]
    if not xs:
        return [
            BatchVector.zeros(field, (0, 0), force_pure)
            for _ in range(n_servers)
        ]
    m = circuit.n_mul_gates
    _, size_2n = snip_domain_sizes(m)
    # One compiled-plan sweep traces the whole batch; it consumes no
    # randomness, so hoisting it out of the draw loop leaves the rng
    # sequence — including the failure point of a mid-batch invalid
    # input — exactly scalar.
    trace = compile_circuit(field, circuit).evaluate_batch(xs, force_pure)
    randoms: list[ProofRandomness | None] = []
    random_rows: list[list[list[int]]] = []
    for i, x in enumerate(xs):
        x_rand = [
            field.rand_vector(len(x), rng) for _ in range(n_servers - 1)
        ]
        if check_valid and not trace.valid[i]:
            raise SnipError(
                f"input does not satisfy {circuit.name}; refusing to prove"
            )
        if m:
            u0 = field.rand(rng)
            v0 = field.rand(rng)
            randoms.append(
                ProofRandomness(
                    u0=u0, v0=v0, triple=generate_triple(field, rng)
                )
            )
        else:
            randoms.append(None)
        share_rand = _draw_proof_share_randoms(field, size_2n, n_servers, rng)
        random_rows.append(
            [x_rand[j] + share_rand[j] for j in range(n_servers - 1)]
        )
    h = h_planes_batch(field, circuit, trace, randoms, force_pure)
    full = submission_planes(field, circuit, xs, randoms, h, force_pure)
    return share_vectors_explicit_batch(
        field, full, n_servers, random_rows=random_rows,
        force_pure=force_pure,
    )


def prove_and_share_many(
    field: PrimeField,
    circuit: Circuit,
    xs: Sequence[Sequence[int]],
    n_servers: int,
    rng,
    force_pure: bool | None = None,
) -> list[tuple[list[list[int]], list[SnipProofShare]]]:
    """Batched client uploads: one ``(x_shares, proof_shares)`` per input.

    Bit-identical to sequential :func:`prove_and_share` calls under the
    same rng: all per-submission randomness (input sharing, then the
    proof's f(0)/g(0)/triple, then proof sharing) is drawn in exactly
    scalar order, and only the deterministic polynomial work and the
    final-share arithmetic are batched
    (:func:`prove_and_share_planes`, which this wraps with an int-level
    decode).  Earlier revisions drew all input sharings before any
    proof randomness, which made the batch equivalent only in
    distribution; the order guarantee is now pinned by
    ``tests/snip/test_client_batch_equivalence.py``.
    """
    xs = [list(x) for x in xs]
    if not xs:
        return []
    per_server = prove_and_share_planes(
        field, circuit, xs, n_servers, rng, force_pure=force_pure
    )
    server_rows = [batch.to_ints() for batch in per_server]
    m = circuit.n_mul_gates
    out = []
    for i, x in enumerate(xs):
        k = len(x)
        x_shares = [server_rows[j][i][:k] for j in range(n_servers)]
        proof_shares = [
            SnipProofShare.unflatten(field, server_rows[j][i][k:], m)
            for j in range(n_servers)
        ]
        out.append((x_shares, proof_shares))
    return out
