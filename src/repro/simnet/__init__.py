"""Simulated WAN substrate: topology, event network, throughput model."""

from repro.simnet.network import SimError, SimNetwork
from repro.simnet.regions import (
    Topology,
    paper_wan_topology,
    same_datacenter,
    wan_subset,
)
from repro.simnet.prio_cluster import ClusterReport, run_cluster
from repro.simnet.throughput import (
    PipelineCosts,
    cluster_throughput,
    leader_amortized_tx,
)

__all__ = [
    "SimError",
    "SimNetwork",
    "Topology",
    "paper_wan_topology",
    "same_datacenter",
    "wan_subset",
    "ClusterReport",
    "run_cluster",
    "PipelineCosts",
    "cluster_throughput",
    "leader_amortized_tx",
]
