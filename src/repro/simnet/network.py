"""A small event-driven network simulator.

Nodes register message handlers; ``send`` schedules a delivery after
the topology's latency plus serialization time; ``run`` drains the
event queue in timestamp order.  Per-link byte counters feed the
bandwidth figures, and the final clock value gives end-to-end latency
measurements for protocol runs that the in-process runner cannot
provide.

This is deliberately minimal — enough to run the full Prio verification
protocol with realistic message interleaving (the integration tests do
exactly that) without pulling in an external discrete-event framework.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from repro.simnet.regions import Topology


class SimError(RuntimeError):
    pass


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    dst: int = dc_field(compare=False)
    src: int = dc_field(compare=False)
    payload: Any = dc_field(compare=False)


Handler = Callable[["SimNetwork", int, Any], None]


class SimNetwork:
    """Latency- and bandwidth-aware message passing between nodes."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.clock = 0.0
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self._handlers: dict[int, Handler] = {}
        #: bytes sent, indexed [src][dst]
        self.bytes_sent = [
            [0] * topology.n_sites for _ in range(topology.n_sites)
        ]
        self.messages_sent = 0

    def register(self, node: int, handler: Handler) -> None:
        if not 0 <= node < self.topology.n_sites:
            raise SimError(f"no such node {node}")
        self._handlers[node] = handler

    def send(self, src: int, dst: int, payload: Any, size_bytes: int) -> None:
        """Schedule delivery: latency + size/bandwidth after now."""
        if dst not in self._handlers:
            raise SimError(f"node {dst} has no handler")
        transfer = size_bytes * 8 / self.topology.bandwidth_bps
        delay = self.topology.latency(src, dst) + transfer
        self.bytes_sent[src][dst] += size_bytes
        self.messages_sent += 1
        heapq.heappush(
            self._queue,
            _Event(
                time=self.clock + delay,
                sequence=next(self._sequence),
                dst=dst,
                src=src,
                payload=payload,
            ),
        )

    def broadcast(
        self, src: int, payload: Any, size_bytes: int, include_self: bool = False
    ) -> None:
        for dst in self._handlers:
            if dst == src and not include_self:
                continue
            self.send(src, dst, payload, size_bytes)

    def run(self, max_events: int = 1_000_000) -> float:
        """Drain the queue; returns the final clock (seconds)."""
        events = 0
        while self._queue:
            events += 1
            if events > max_events:
                raise SimError("event budget exhausted (livelock?)")
            event = heapq.heappop(self._queue)
            self.clock = max(self.clock, event.time)
            self._handlers[event.dst](self, event.src, event.payload)
        return self.clock

    def total_bytes_from(self, src: int) -> int:
        return sum(self.bytes_sent[src])
