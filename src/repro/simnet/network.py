"""A small event-driven network simulator.

Nodes register message handlers; ``send`` schedules a delivery after
the topology's latency plus serialization time; ``run`` drains the
event queue in timestamp order.  Per-link byte counters feed the
bandwidth figures, and the final clock value gives end-to-end latency
measurements for protocol runs that the in-process runner cannot
provide.

This is deliberately minimal — enough to run the full Prio verification
protocol with realistic message interleaving (the integration tests do
exactly that) without pulling in an external discrete-event framework.

``run`` drains events strictly one at a time; ``run_async`` drains the
*same schedule* in latency windows: every queued event closer to the
window head than the smallest inter-site latency provably cannot be
caused by another event in the window, so the window's handlers execute
concurrently (per destination node, in order) and their sends are
buffered and flushed in serial event order afterwards — sequence
numbers, byte counters, clock reads, and therefore the entire event
schedule are bit-identical to ``run``.  That is what lets cluster
handlers ``await`` per-server worker pools and actually overlap them.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from repro.simnet.regions import Topology


class SimError(RuntimeError):
    pass


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    dst: int = dc_field(compare=False)
    src: int = dc_field(compare=False)
    payload: Any = dc_field(compare=False)


Handler = Callable[["SimNetwork", int, Any], None]


class _DeferredView:
    """A per-event view of the network during a concurrent window.

    Handlers running concurrently must still observe the *serial*
    schedule: ``clock`` is frozen to the value the serial run would
    show while this event's handler runs, and ``send``/``broadcast``
    buffer instead of touching the shared queue — the window flushes
    every buffered send in serial event order after its barrier, so
    sequence numbers, byte counters, and delivery times come out
    identical to :meth:`SimNetwork.run`.
    """

    __slots__ = ("_net", "clock", "sends")

    def __init__(self, net: "SimNetwork", clock: float) -> None:
        self._net = net
        self.clock = clock
        #: buffered ``(src, dst, payload, size_bytes)`` tuples
        self.sends: list[tuple[int, int, Any, int]] = []

    @property
    def topology(self) -> Topology:
        return self._net.topology

    def send(self, src: int, dst: int, payload: Any, size_bytes: int) -> None:
        if dst not in self._net._handlers:
            raise SimError(f"node {dst} has no handler")
        self.sends.append((src, dst, payload, size_bytes))

    def broadcast(
        self, src: int, payload: Any, size_bytes: int, include_self: bool = False
    ) -> None:
        for dst in self._net._handlers:
            if dst == src and not include_self:
                continue
            self.send(src, dst, payload, size_bytes)


class SimNetwork:
    """Latency- and bandwidth-aware message passing between nodes."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.clock = 0.0
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self._handlers: dict[int, Handler] = {}
        #: bytes sent, indexed [src][dst]
        self.bytes_sent = [
            [0] * topology.n_sites for _ in range(topology.n_sites)
        ]
        self.messages_sent = 0

    def register(self, node: int, handler: Handler) -> None:
        if not 0 <= node < self.topology.n_sites:
            raise SimError(f"no such node {node}")
        self._handlers[node] = handler

    def send(self, src: int, dst: int, payload: Any, size_bytes: int) -> None:
        """Schedule delivery: latency + size/bandwidth after now."""
        if dst not in self._handlers:
            raise SimError(f"node {dst} has no handler")
        transfer = size_bytes * 8 / self.topology.bandwidth_bps
        delay = self.topology.latency(src, dst) + transfer
        self.bytes_sent[src][dst] += size_bytes
        self.messages_sent += 1
        heapq.heappush(
            self._queue,
            _Event(
                time=self.clock + delay,
                sequence=next(self._sequence),
                dst=dst,
                src=src,
                payload=payload,
            ),
        )

    def broadcast(
        self, src: int, payload: Any, size_bytes: int, include_self: bool = False
    ) -> None:
        for dst in self._handlers:
            if dst == src and not include_self:
                continue
            self.send(src, dst, payload, size_bytes)

    def run(self, max_events: int = 1_000_000) -> float:
        """Drain the queue; returns the final clock (seconds)."""
        events = 0
        while self._queue:
            events += 1
            if events > max_events:
                raise SimError("event budget exhausted (livelock?)")
            event = heapq.heappop(self._queue)
            self.clock = max(self.clock, event.time)
            self._handlers[event.dst](self, event.src, event.payload)
        return self.clock

    def _min_link_latency(self) -> float:
        """Smallest one-way latency between *distinct* sites.

        The window-safety bound: an event at time ``t`` can only cause
        deliveries at ``t + latency + transfer >= t + min_latency``, so
        queued events within ``min_latency`` of the window head cannot
        depend on each other.  (Self-links are excluded — in-run
        traffic is always inter-node; ``run_async`` still verifies the
        bound per flushed send.)
        """
        n = self.topology.n_sites
        latencies = [
            self.topology.latency(a, b)
            for a in range(n)
            for b in range(n)
            if a != b
        ]
        return min(latencies, default=0.0)

    async def run_async(self, max_events: int = 1_000_000) -> float:
        """Drain the queue concurrently; same schedule as :meth:`run`.

        Events are popped in latency windows (every queued event less
        than the minimum inter-site latency past the window head).
        Within a window, events for the same destination node run
        sequentially in serial order — node handlers mutate per-node
        state — while distinct destinations run concurrently via
        ``asyncio.gather``, which is exactly where handlers awaiting
        per-server worker pools (``fanout.call``) overlap for real.
        Handlers may be plain functions or coroutine functions; each
        receives a :class:`_DeferredView` whose buffered sends are
        flushed in serial event order after the window's barrier.

        A degenerate topology (minimum latency 0) falls back to
        single-event windows — serial, but still async-capable.
        """
        min_latency = self._min_link_latency()
        events = 0
        while self._queue:
            window = [heapq.heappop(self._queue)]
            if min_latency > 0.0:
                horizon = window[0].time + min_latency
                while self._queue and self._queue[0].time < horizon:
                    window.append(heapq.heappop(self._queue))
            events += len(window)
            if events > max_events:
                raise SimError("event budget exhausted (livelock?)")
            # Freeze each event's serial clock (monotone across the
            # window, exactly as run() would update it).
            views: list[_DeferredView] = []
            clock = self.clock
            for event in window:
                clock = max(clock, event.time)
                views.append(_DeferredView(self, clock))
            last_time = clock

            by_dst: dict[int, list[int]] = {}
            for i, event in enumerate(window):
                by_dst.setdefault(event.dst, []).append(i)

            async def drain(indices: list[int]) -> None:
                for i in indices:
                    event = window[i]
                    result = self._handlers[event.dst](
                        views[i], event.src, event.payload
                    )
                    if asyncio.iscoroutine(result):
                        await result

            if len(by_dst) == 1:
                await drain(next(iter(by_dst.values())))
            else:
                await asyncio.gather(
                    *(drain(indices) for indices in by_dst.values())
                )

            # Flush buffered sends in serial event order: sequence
            # numbers and delivery times match run() exactly.
            for view in views:
                self.clock = view.clock
                for send in view.sends:
                    self.send(*send)
            if self._queue and self._queue[0].time < last_time:
                # A handler injected an event inside its own window
                # (sub-minimum delay) — the serial schedule would have
                # interleaved it; refuse rather than diverge silently.
                raise SimError(
                    "window-unsafe send: delivery scheduled before an "
                    "already-processed event"
                )
            self.clock = last_time
        return self.clock

    def total_bytes_from(self, src: int) -> int:
        return sum(self.bytes_sent[src])
