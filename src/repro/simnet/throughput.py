"""Throughput model: measured CPU cost + modelled WAN cost.

The paper reports cluster throughput (submissions/second) on real EC2
hardware.  This reproduction measures the *computational* cost of each
pipeline on the local machine and combines it with the simulated
topology to model cluster throughput:

    rate = 1 / max( cpu_seconds / cores,            # compute-bound
                    bytes_per_submission / bandwidth )  # network-bound

Verification is batched, so inter-server latency amortizes to ~zero per
submission (it bounds *freshness*, not throughput) — matching the
paper's observation that adding same-datacenter servers barely changes
throughput (Figure 5) and that leadership is load-balanced across
servers (Section 6.1).

Absolute numbers are Python-speed, not Go-speed; EXPERIMENTS.md
compares *ratios* (the no-privacy / no-robustness / Prio cost
multipliers of Table 9), which transfer across substrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.regions import Topology


@dataclass(frozen=True)
class PipelineCosts:
    """Per-submission costs of one pipeline at one configuration."""

    #: CPU-seconds consumed at the busiest server
    server_cpu_s: float
    #: bytes the busiest server must transmit, per submission
    server_tx_bytes: float
    #: bytes the busiest server must receive, per submission
    server_rx_bytes: float = 0.0


def cluster_throughput(
    costs: PipelineCosts,
    topology: Topology,
    utilization: float = 1.0,
) -> float:
    """Modelled sustained submissions/second for the whole cluster."""
    compute_limit = costs.server_cpu_s / topology.cores_per_server
    wire_limit = (
        max(costs.server_tx_bytes, costs.server_rx_bytes) * 8
        / topology.bandwidth_bps
    )
    bottleneck = max(compute_limit, wire_limit)
    if bottleneck <= 0:
        raise ValueError("costs must be positive")
    return utilization / bottleneck


def leader_amortized_tx(
    per_peer_bytes: float, n_servers: int
) -> float:
    """Average per-submission transmit bytes with rotating leadership.

    The leader transmits to s-1 peers; each server leads 1/s of the
    time (Section 6.1's load-balancing), so the average transmit cost
    per server is ((s-1) + (s-1)/s... ) — simplified: a leader sends
    (s-1)*b, a non-leader sends b, and each server is leader with
    probability 1/s:

        avg = (1/s) * (s-1) * b + ((s-1)/s) * b = 2b(s-1)/s
    """
    s = n_servers
    return 2.0 * per_peer_bytes * (s - 1) / s
