"""Run the full Prio verification protocol over the simulated WAN.

The in-process runner (:mod:`repro.protocol.runner`) executes servers
lock-step, which hides message timing entirely.  This module instead
drives real :class:`~repro.protocol.server.PrioServer` instances as
asynchronous nodes of a :class:`~repro.simnet.network.SimNetwork`:
upload packets, round-1 and round-2 broadcasts are all delivered by the
event queue with topology latencies, and servers make progress purely
by reacting to messages — submissions interleave exactly as they would
across a real WAN.

Verification is *group-granular*: each server buffers arriving uploads
into groups of ``batch_size`` (1 by default — one submission per
group, the paper's baseline) and runs the vectorized
``begin_verification_batch``/``finish_verification_batch`` path once
per group, so one round-1/round-2 broadcast carries a whole group's
messages.  Upload order is deterministic per link, so every server
forms identical groups; group membership is carried in the broadcasts
and cross-checked.  Decisions, accumulation, and replay protection
remain per submission.

Server-side CPU work executes through the same backend seam as the
async pipeline (:mod:`repro.protocol.fanout`): ``executor="inline"``
(default) runs it on the event loop's thread, ``executor="process"``
gives every simulated server a dedicated worker process that owns its
state — the single-host stand-in for the paper's
one-server-per-machine deployment.  The event schedule, group
membership, and decisions are identical either way (asserted by the
integration tests); the node adapters only ever exchange ids and
plane-form round batches with the backend.

Used by the integration tests (correctness must be independent of
message timing and of ``batch_size``) and by latency experiments (how
long until a submission is fully verified across five regions?).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field as dc_field

from repro.afe.base import Afe
from repro.protocol.client import PrioClient
from repro.protocol.fanout import ServerFanout, resolve_fanout
from repro.protocol.server import PrioServer
from repro.simnet.network import SimError, SimNetwork
from repro.simnet.regions import Topology
from repro.snip.verifier import Round1Batch, Round2Batch, ServerRandomness


@dataclass
class _GroupState:
    """One verification group (a batch of submissions) at one server."""

    sids: tuple[bytes, ...] | None
    #: True once this server formed the group locally (received every
    #: upload and ran round 1); peers' broadcasts may arrive earlier
    formed: bool = False
    #: per-server plane-form broadcasts (one batch covers the group)
    round1: dict[int, Round1Batch] = dc_field(default_factory=dict)
    round2: dict[int, Round2Batch] = dc_field(default_factory=dict)
    round2_sent: bool = False
    done: bool = False


@dataclass
class ClusterReport:
    """Outcome of one simulated cluster run."""

    n_accepted: int
    n_rejected: int
    aggregate: object
    #: simulated seconds from first upload to last decision
    wall_clock_s: float
    #: bytes each server transmitted to peers
    server_tx_bytes: list[int]
    #: simulated seconds until the first submission was decided
    first_decision_s: float


class _ServerNode:
    """Adapter: a PrioServer reacting to simulated network messages.

    The node owns only bookkeeping (group membership, arrival buffers,
    decision log); the server's actual state — pendings, verifier
    parties, accumulator — lives behind the fan-out backend, which may
    be this process or a dedicated worker per server.
    """

    def __init__(
        self,
        server: PrioServer,
        fanout: ServerFanout,
        element_bytes: int,
        batch_size: int,
        expected_uploads: int,
    ) -> None:
        self.server = server
        self.fanout = fanout
        self.index = server.server_index
        self.n_servers = server.n_servers
        self.element_bytes = element_bytes
        self.batch_size = batch_size
        self.expected_uploads = expected_uploads
        self.uploads_received = 0
        self._buffer: list[bytes] = []
        self._next_group = 0
        self.groups: dict[int, _GroupState] = {}
        self.decisions: dict[bytes, bool] = {}
        self.decision_times: list[float] = []

    async def handle(self, net: SimNetwork, src: int, message: tuple) -> None:
        kind = message[0]
        if kind == "upload":
            await self._on_upload(net, message[1])
        elif kind == "r1":
            await self._on_round1(net, *message[1:])
        elif kind == "r2":
            await self._on_round2(net, *message[1:])

    # ------------------------------------------------------------------

    async def _on_upload(self, net: SimNetwork, packet) -> None:
        sid = await self.fanout.call(self.index, "receive_one", packet)
        self.uploads_received += 1
        self._buffer.append(sid)
        # Close the group when full — or when no further uploads can
        # arrive (the final, possibly partial, group).
        if (
            len(self._buffer) >= self.batch_size
            or self.uploads_received == self.expected_uploads
        ):
            await self._form_group(net)

    async def _form_group(self, net: SimNetwork) -> None:
        sids = tuple(self._buffer)
        self._buffer.clear()
        gid = self._next_group
        self._next_group += 1
        state = self.groups.get(gid)
        if state is None:
            state = self.groups[gid] = _GroupState(sids=sids)
        else:
            # Peer broadcasts raced ahead of our uploads; the group
            # they announced must match the one we just formed.
            if state.sids is not None and state.sids != sids:
                raise SimError(f"group {gid} membership disagreement")
            state.sids = sids
        state.formed = True
        round1 = await self.fanout.call(self.index, "begin_group", gid, sids)
        state.round1[self.index] = round1
        # The broadcast carries the plane-form batch; the byte cost on
        # the simulated wire is unchanged (two elements per submission).
        net.broadcast(
            self.index,
            ("r1", gid, sids, self.index, round1),
            2 * self.element_bytes * len(sids),
        )
        await self._maybe_round2(net, gid, state)

    def _require_group(
        self, gid: int, sids: tuple[bytes, ...]
    ) -> _GroupState:
        state = self.groups.get(gid)
        if state is None:
            # Upload(s) not here yet (WAN reordering): stash under the
            # announced group id until our own group forms.
            state = self.groups[gid] = _GroupState(sids=sids)
        elif state.sids is not None and state.sids != sids:
            raise SimError(f"group {gid} membership disagreement")
        return state

    async def _on_round1(
        self, net: SimNetwork, gid: int, sids, src_index: int, msgs
    ) -> None:
        state = self._require_group(gid, sids)
        state.round1[src_index] = msgs
        await self._maybe_round2(net, gid, state)

    async def _maybe_round2(
        self, net: SimNetwork, gid: int, state: _GroupState
    ) -> None:
        if (
            not state.formed
            or len(state.round1) < self.n_servers
            or state.round2_sent
        ):
            return
        round1_batches = [
            state.round1[s] for s in range(self.n_servers)
        ]
        round2 = await self.fanout.call(
            self.index, "finish_group", gid, round1_batches
        )
        state.round2_sent = True
        state.round2[self.index] = round2
        net.broadcast(
            self.index,
            ("r2", gid, state.sids, self.index, round2),
            2 * self.element_bytes * len(state.sids),
        )
        await self._maybe_decide(net, gid, state)

    async def _on_round2(
        self, net: SimNetwork, gid: int, sids, src_index: int, msgs
    ) -> None:
        state = self._require_group(gid, sids)
        state.round2[src_index] = msgs
        await self._maybe_decide(net, gid, state)

    async def _maybe_decide(
        self, net: SimNetwork, gid: int, state: _GroupState
    ) -> None:
        if (
            state.done
            or not state.formed
            or len(state.round2) < self.n_servers
        ):
            return
        round2_batches = [
            state.round2[s] for s in range(self.n_servers)
        ]
        decisions = self.server.decide_batch(round2_batches)
        await self.fanout.call(self.index, "settle_group", gid, decisions)
        for sid, accepted in zip(state.sids, decisions):
            self.decisions[sid] = accepted
            self.decision_times.append(net.clock)
        state.done = True


def run_cluster(
    afe: Afe,
    topology: Topology,
    values,
    rng,
    seed: bytes = b"cluster-seed",
    mutate=None,
    batch_size: int = 1,
    executor: "str | None" = "inline",
    client_batch_size: int = 1,
) -> ClusterReport:
    """Submit ``values`` through a simulated cluster; fully verify all.

    ``batch_size > 1`` makes every server verify uploads in groups of
    that size via the vectorized batch path; outcomes are identical to
    ``batch_size=1`` (asserted by the integration tests), only the
    message schedule changes.  ``executor`` selects where each server's
    CPU work runs (``"inline"`` default; ``"process"`` = one worker
    process per server; a ``":K"`` suffix such as ``"process:4"``
    shards every server across K workers of that kind); outcomes are
    backend-independent.  Server handlers execute through the network's
    latency-window concurrency (:meth:`SimNetwork.run_async`), so with
    a thread/process/sharded backend distinct servers' CPU work
    genuinely overlaps instead of serializing through ``call_sync``.
    ``client_batch_size > 1`` prepares uploads through the batched
    plane-resident client prover in chunks of that size — end-to-end
    cluster runs are then batched on *both* halves of the protocol;
    the batched prover is bit-identical to the scalar client, so the
    report (decisions, bytes, schedule) is unchanged (asserted by the
    integration tests).
    """
    if batch_size < 1:
        raise SimError("batch_size must be >= 1")
    if client_batch_size < 1:
        raise SimError("client_batch_size must be >= 1")
    if not (executor is None or isinstance(executor, str)):
        # The cluster constructs its own fresh servers below; a caller
        # fanout is bound to *its* servers, so its ops would mutate
        # those while this function published from the empty fresh
        # ones — a silently wrong report.  Only backend kinds make
        # sense here.
        raise SimError(
            "run_cluster accepts an executor kind "
            "(\"inline\"/\"thread\"/\"process\"/\"auto\"), not a fanout "
            "instance: the cluster owns its servers"
        )
    n_servers = topology.n_sites
    randomness = ServerRandomness(seed)
    servers = [
        PrioServer(afe, i, n_servers, randomness) for i in range(n_servers)
    ]
    element_bytes = afe.field.encoded_size
    values = list(values)
    fanout, owned = resolve_fanout(servers, executor, batch_size)
    try:
        nodes = [
            _ServerNode(
                server, fanout, element_bytes, batch_size, len(values)
            )
            for server in servers
        ]
        net = SimNetwork(topology)
        for node in nodes:
            net.register(node.index, node.handle)

        client = PrioClient(afe, n_servers, rng=rng)
        for start in range(0, len(values), client_batch_size):
            chunk = values[start:start + client_batch_size]
            if client_batch_size > 1:
                submissions = client.prepare_submissions(chunk, batched=True)
            else:
                submissions = [client.prepare_submission(v) for v in chunk]
            for offset, submission in enumerate(submissions):
                index = start + offset
                if mutate is not None:
                    mutate(index, submission)
                # Clients are modelled at the leader's site (site 0):
                # upload packets fan out from there with the topology's
                # latencies.
                for packet in submission.packets:
                    net.send(
                        0,
                        packet.server_index,
                        ("upload", packet),
                        packet.encoded_size(),
                    )
        # Latency-window concurrency: handlers at distinct servers run
        # through asyncio.gather, so per-server worker pools (thread,
        # process, sharded) genuinely overlap — the event schedule and
        # report are bit-identical to the serial run (asserted by the
        # integration tests).
        wall = asyncio.run(net.run_async())
    finally:
        try:
            fanout.end_run()
        finally:
            if owned:
                fanout.close()

    # All servers must agree on every decision (they are deterministic).
    for node in nodes[1:]:
        assert node.decisions == nodes[0].decisions, "servers disagree"

    shares = [server.publish() for server in servers]
    sigma = afe.field.vec_sum(shares)
    n_accepted = servers[0].n_accepted
    aggregate = afe.decode(sigma, n_accepted) if n_accepted else None
    return ClusterReport(
        n_accepted=n_accepted,
        n_rejected=servers[0].n_rejected,
        aggregate=aggregate,
        wall_clock_s=wall,
        server_tx_bytes=[net.total_bytes_from(i) for i in range(n_servers)],
        first_decision_s=min(
            (min(n.decision_times) for n in nodes if n.decision_times),
            default=0.0,
        ),
    )
