"""Run the full Prio verification protocol over the simulated WAN.

The in-process runner (:mod:`repro.protocol.runner`) executes servers
lock-step, which hides message timing entirely.  This module instead
drives real :class:`~repro.protocol.server.PrioServer` instances as
asynchronous nodes of a :class:`~repro.simnet.network.SimNetwork`:
upload packets, round-1 and round-2 broadcasts are all delivered by the
event queue with topology latencies, and servers make progress purely
by reacting to messages — submissions interleave exactly as they would
across a real WAN.

Used by the integration tests (correctness must be independent of
message timing) and by latency experiments (how long until a
submission is fully verified across five regions?).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.afe.base import Afe
from repro.protocol.client import PrioClient
from repro.protocol.server import PendingSubmission, PrioServer
from repro.simnet.network import SimNetwork
from repro.simnet.regions import Topology
from repro.snip.verifier import Round1Message, Round2Message, ServerRandomness


@dataclass
class _SubmissionState:
    pending: PendingSubmission | None
    party: object = None
    round1: dict[int, Round1Message] = dc_field(default_factory=dict)
    round2: dict[int, Round2Message] = dc_field(default_factory=dict)
    done: bool = False


@dataclass
class ClusterReport:
    """Outcome of one simulated cluster run."""

    n_accepted: int
    n_rejected: int
    aggregate: object
    #: simulated seconds from first upload to last decision
    wall_clock_s: float
    #: bytes each server transmitted to peers
    server_tx_bytes: list[int]
    #: simulated seconds until the first submission was decided
    first_decision_s: float


class _ServerNode:
    """Adapter: a PrioServer reacting to simulated network messages."""

    def __init__(self, server: PrioServer, element_bytes: int) -> None:
        self.server = server
        self.index = server.server_index
        self.n_servers = server.n_servers
        self.element_bytes = element_bytes
        self.states: dict[bytes, _SubmissionState] = {}
        self.decisions: dict[bytes, bool] = {}
        self.decision_times: list[float] = []

    def handle(self, net: SimNetwork, src: int, message: tuple) -> None:
        kind = message[0]
        if kind == "upload":
            self._on_upload(net, message[1])
        elif kind == "r1":
            self._on_round1(net, message[1], message[2], message[3])
        elif kind == "r2":
            self._on_round2(net, message[1], message[2], message[3])

    # ------------------------------------------------------------------

    def _on_upload(self, net: SimNetwork, packet) -> None:
        pending = self.server.receive(packet)
        sid = pending.submission_id
        # Round messages may have raced ahead of the upload over the
        # WAN; merge into the stashed state if one exists.
        state = self.states.get(sid)
        if state is None:
            state = _SubmissionState(pending=pending)
            self.states[sid] = state
        else:
            state.pending = pending
        party, msg = self.server.begin_verification(pending)
        state.party = party
        state.round1[self.index] = msg
        net.broadcast(
            self.index, ("r1", sid, self.index, msg), 2 * self.element_bytes
        )
        self._maybe_round2(net, state, sid)

    def _on_round1(
        self, net: SimNetwork, sid: bytes, src_index: int, msg: Round1Message
    ) -> None:
        state = self.states.get(sid)
        if state is None:
            # Upload not here yet (WAN reordering): requeue locally by
            # re-sending to self after the upload arrives is complex;
            # instead buffer in a stash keyed by sid.
            self.states[sid] = state = _SubmissionState(pending=None)
        state.round1[src_index] = msg
        self._maybe_round2(net, state, sid)

    def _maybe_round2(
        self, net: SimNetwork, state: _SubmissionState, sid: bytes
    ) -> None:
        if state.pending is None or len(state.round1) < self.n_servers:
            return
        if self.index in state.round2:
            return
        ordered = [state.round1[i] for i in range(self.n_servers)]
        msg = self.server.finish_verification(state.party, ordered)
        state.round2[self.index] = msg
        net.broadcast(
            self.index, ("r2", sid, self.index, msg), 2 * self.element_bytes
        )
        self._maybe_decide(net, state, sid)

    def _on_round2(
        self, net: SimNetwork, sid: bytes, src_index: int, msg: Round2Message
    ) -> None:
        state = self.states.get(sid)
        if state is None:
            self.states[sid] = state = _SubmissionState(pending=None)
        state.round2[src_index] = msg
        self._maybe_decide(net, state, sid)

    def _maybe_decide(
        self, net: SimNetwork, state: _SubmissionState, sid: bytes
    ) -> None:
        if (
            state.done
            or state.pending is None
            or len(state.round2) < self.n_servers
        ):
            return
        ordered = [state.round2[i] for i in range(self.n_servers)]
        accepted = self.server.decide(ordered)
        if accepted:
            self.server.accumulate(state.pending)
        else:
            self.server.reject(state.pending)
        state.done = True
        self.decisions[sid] = accepted
        self.decision_times.append(net.clock)


def run_cluster(
    afe: Afe,
    topology: Topology,
    values,
    rng,
    seed: bytes = b"cluster-seed",
    mutate=None,
) -> ClusterReport:
    """Submit ``values`` through a simulated cluster; fully verify all."""
    n_servers = topology.n_sites
    randomness = ServerRandomness(seed)
    servers = [
        PrioServer(afe, i, n_servers, randomness) for i in range(n_servers)
    ]
    element_bytes = afe.field.encoded_size
    nodes = [_ServerNode(server, element_bytes) for server in servers]
    net = SimNetwork(topology)
    for node in nodes:
        net.register(node.index, node.handle)

    client = PrioClient(afe, n_servers, rng=rng)
    for index, value in enumerate(values):
        submission = client.prepare_submission(value)
        if mutate is not None:
            mutate(index, submission)
        # Clients are modelled at the leader's site (site 0): upload
        # packets fan out from there with the topology's latencies.
        for packet in submission.packets:
            net.send(
                0,
                packet.server_index,
                ("upload", packet),
                packet.encoded_size(),
            )
    wall = net.run()

    # All servers must agree on every decision (they are deterministic).
    for node in nodes[1:]:
        assert node.decisions == nodes[0].decisions, "servers disagree"

    shares = [server.publish() for server in servers]
    sigma = afe.field.vec_sum(shares)
    n_accepted = servers[0].n_accepted
    aggregate = afe.decode(sigma, n_accepted) if n_accepted else None
    return ClusterReport(
        n_accepted=n_accepted,
        n_rejected=servers[0].n_rejected,
        aggregate=aggregate,
        wall_clock_s=wall,
        server_tx_bytes=[net.total_bytes_from(i) for i in range(n_servers)],
        first_decision_s=min(
            (min(n.decision_times) for n in nodes if n.decision_times),
            default=0.0,
        ),
    )
