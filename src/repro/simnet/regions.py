"""The paper's five-datacenter topology, as a latency/bandwidth model.

Section 6.1: "we configured five Amazon EC2 servers (eight-core
c3.2xlarge machines ...) in five Amazon data centers (N. Va., N. Ca.,
Oregon, Ireland, and Frankfurt)".  Without EC2, this module encodes
that topology as a one-way latency matrix (milliseconds, approximating
public inter-region RTT measurements) and per-link bandwidth, which the
throughput model combines with *measured* CPU costs.

The same-datacenter topology of Figure 5 ("we locate all of the servers
in the same data center, so that the latency and bandwidth between each
pair of servers is roughly constant") is :func:`same_datacenter`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Topology:
    """Server locations plus pairwise one-way latency (seconds)."""

    names: tuple[str, ...]
    latency_s: tuple[tuple[float, ...], ...]
    bandwidth_bps: float
    cores_per_server: int = 8

    @property
    def n_sites(self) -> int:
        return len(self.names)

    def latency(self, a: int, b: int) -> float:
        return self.latency_s[a][b]

    def max_latency_from(self, site: int) -> float:
        return max(self.latency_s[site])


_MS = 1e-3

#: Approximate one-way latencies between the paper's five regions.
_PAPER_REGIONS = ("n-virginia", "n-california", "oregon", "ireland", "frankfurt")
_PAPER_LATENCY_MS = (
    (0.0, 31.0, 38.0, 38.0, 44.0),
    (31.0, 0.0, 10.0, 70.0, 73.0),
    (38.0, 10.0, 0.0, 62.0, 79.0),
    (38.0, 70.0, 62.0, 0.0, 12.0),
    (44.0, 73.0, 79.0, 12.0, 0.0),
)


def paper_wan_topology(bandwidth_gbps: float = 1.0) -> Topology:
    """The 5-region WAN deployment of Figures 4/6 and Table 9."""
    latency = tuple(
        tuple(ms * _MS for ms in row) for row in _PAPER_LATENCY_MS
    )
    return Topology(
        names=_PAPER_REGIONS,
        latency_s=latency,
        bandwidth_bps=bandwidth_gbps * 1e9,
    )


def same_datacenter(
    n_servers: int,
    latency_ms: float = 0.5,
    bandwidth_gbps: float = 10.0,
) -> Topology:
    """Figure 5's topology: n servers behind one switch."""
    names = tuple(f"server-{i}" for i in range(n_servers))
    latency = tuple(
        tuple(0.0 if a == b else latency_ms * _MS for b in range(n_servers))
        for a in range(n_servers)
    )
    return Topology(
        names=names,
        latency_s=latency,
        bandwidth_bps=bandwidth_gbps * 1e9,
    )


def wan_subset(n_servers: int, bandwidth_gbps: float = 1.0) -> Topology:
    """First ``n`` of the paper's regions (cycling if n > 5)."""
    base = paper_wan_topology(bandwidth_gbps)
    indices = [i % base.n_sites for i in range(n_servers)]
    names = tuple(f"{base.names[i]}-{j}" for j, i in enumerate(indices))
    latency = tuple(
        tuple(base.latency_s[a][b] for b in indices) for a in indices
    )
    return Topology(
        names=names, latency_s=latency, bandwidth_bps=base.bandwidth_bps
    )
