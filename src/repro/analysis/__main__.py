"""``python -m repro.analysis`` entry point."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
