"""Repo-specific soundness lint: AST invariant checks for Prio.

Prio's robustness guarantee survives refactors only if the
implementation preserves invariants the type system cannot see: field
values stay canonical when they cross a public API boundary, batched
code consumes randomness in exactly the scalar draw order, executors
and tasks are torn down on every path, state crossing a process-shard
seam pickles, and attacker-influenced integers are bound-checked
before they hit fixed-width wire encodings.  Each of those has already
cost a real bug (see ``docs/ANALYSIS.md`` for the PR that motivated
every rule); this package is the static half of the regression
insurance — generic linters do not know these bug classes.

Architecture
------------

* :mod:`repro.analysis.registry` — the checker registry; every rule is
  a :class:`~repro.analysis.registry.Checker` subclass registered by
  import.
* :mod:`repro.analysis.driver` — single-parse multi-visitor driver:
  each file is parsed once and walked once, with every active checker
  receiving visit/leave events off the same traversal.
* :mod:`repro.analysis.suppress` — ``# repro: allow(<rule>)``
  suppression comments and the ``# repro: lint-as(<module>)`` pragma
  (fixture files opt in to a hot-path module's rules).
* :mod:`repro.analysis.rules` — the six shipped rules.
* :mod:`repro.analysis.cli` — ``python -m repro.analysis <paths>``
  with human and JSON output and CI-friendly exit codes.
"""

from __future__ import annotations

from repro.analysis.driver import AnalysisResult, analyze_paths, analyze_source
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, all_checkers, register

__all__ = [
    "AnalysisResult",
    "Checker",
    "Finding",
    "all_checkers",
    "analyze_paths",
    "analyze_source",
    "register",
]
