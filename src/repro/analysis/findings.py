"""The finding record every rule reports and every output format renders."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``module`` is the normalized repo-relative module path the rule
    matched on (which, for fixture files carrying a ``# repro:
    lint-as(...)`` pragma, differs from ``path``); ``suppressed`` marks
    findings silenced by a ``# repro: allow(<rule>)`` comment — they
    are kept for reporting (``--show-suppressed``) but never fail a
    run.
    """

    rule: str
    path: str
    module: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.rule}]{mark} {self.message}"
        )

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)
