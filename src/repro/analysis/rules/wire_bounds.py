"""wire-bounds: every fixed-width encode is preceded by a bound check.

``int.to_bytes(width, ...)`` raises a bare ``OverflowError`` when the
value does not fit — which, on the wire path, surfaces to a peer as a
connection reset with no protocol error (PR 6's bug class in
``encode_upload``).  The rule requires every ``<expr>.to_bytes(...)``
or ``struct.pack(...)`` of a non-constant subject to sit after an
``if`` in the same function that mentions the subject and raises one of
the protocol error types (``WireError``/``FrameError``/``ValueError``).
ALL_CAPS module constants are exempt — their range is fixed at import
time.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import dotted_name, name_tokens

_PROTOCOL_ERRORS = frozenset({"WireError", "FrameError", "ValueError"})
#: names that appear inside subjects but carry no range information
_NOISE_TOKENS = frozenset({"len", "self", "int", "struct", "pack"})


def _is_constantish(node: ast.AST) -> bool:
    """Literals and ALL_CAPS constants need no runtime bound check."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return node.id.isupper()
    if isinstance(node, ast.Attribute):
        return node.attr.isupper()
    return False


@register
class WireBounds(Checker):
    name = "wire-bounds"
    description = (
        "fixed-width encode (to_bytes/struct.pack) of an unchecked value; "
        "a bare OverflowError here surfaces to the peer as a reset"
    )
    targets = (
        "repro/protocol/wire.py",
        "repro/transport/framing.py",
    )

    def _guarded(self, ctx, node: ast.Call, tokens: "set[str]") -> bool:
        fn = ctx.enclosing_function()
        if fn is None:
            return False
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.If) or sub.lineno >= node.lineno:
                continue
            if not (name_tokens(sub.test) & tokens):
                continue
            for inner in ast.walk(sub):
                if isinstance(inner, ast.Raise) and inner.exc is not None:
                    raised = name_tokens(inner.exc)
                    if raised & _PROTOCOL_ERRORS:
                        return True
        return False

    def visit_Call(self, node: ast.Call, ctx) -> None:
        func = node.func
        subjects: "list[ast.AST]" = []
        what = ""
        if isinstance(func, ast.Attribute) and func.attr == "to_bytes":
            if _is_constantish(func.value):
                return
            subjects = [func.value]
            what = "to_bytes"
        elif dotted_name(func) == "struct.pack":
            subjects = [a for a in node.args[1:] if not _is_constantish(a)]
            if not subjects:
                return
            what = "struct.pack"
        else:
            return
        tokens: "set[str]" = set()
        for subject in subjects:
            tokens |= name_tokens(subject)
        tokens -= _NOISE_TOKENS
        if not tokens:
            return
        if not self._guarded(ctx, node, tokens):
            source = ", ".join(sorted(tokens))
            self.report(
                ctx, node,
                f"fixed-width {what} of '{source}' without a preceding "
                "bound check raising WireError/FrameError; out-of-range "
                "values surface as a bare OverflowError mid-write",
            )
