"""plane-discipline: no scalar materialization inside hot-path loops.

The batched pipeline keeps shares resident as 24-bit limb planes
(``BatchVector``); the whole point of PR 3/7 was that per-submission
Python-int round trips (``to_ints``/``from_ints``/scalar
``expand_seed``) never appear on the hot path.  A scalar call *inside a
loop* in one of the hot-path modules silently reintroduces the
O(batch x length) interpreter cost the planes exist to avoid.  Fallback
paths that genuinely need scalar materialization annotate the why with
``# repro: allow(plane-discipline)``.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import call_name

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

#: calls that materialize per-submission Python ints / scalar rows
_SCALAR_CALLS = frozenset({
    "to_ints",
    "row_ints",
    "to_int_rows",
    "from_ints",
    "set_row_ints",
    "expand_seed",
    "decode_vector",
    "encode_vector",
    "share_vector",
})


@register
class PlaneDiscipline(Checker):
    name = "plane-discipline"
    description = (
        "scalar materialization (to_ints/from_ints/scalar expand_seed/...) "
        "inside a loop on a limb-plane hot path"
    )
    targets = (
        "repro/field/batch.py",
        "repro/circuit/compiled.py",
        "repro/snip/batch_prover.py",
        "repro/snip/verifier.py",
        "repro/protocol/server.py",
        "repro/protocol/fanout.py",
        "repro/sharing/prg.py",
    )

    def _repeats(self, node: ast.Call, ctx) -> bool:
        """True when ``node`` executes once per loop iteration.

        Sharper than ``ctx.in_loop()``: the *iterator source* of a
        ``for`` statement or of a comprehension's first generator runs
        exactly once, so ``[f(x) for x in batch.to_ints()]`` is one
        materialization, not B of them.
        """
        for ancestor in reversed(ctx.stack):
            if isinstance(ancestor, _FUNCTION_NODES):
                return False
            once = None
            if isinstance(ancestor, (ast.For, ast.AsyncFor)):
                once = ancestor.iter
            elif isinstance(ancestor, _COMPREHENSIONS):
                once = ancestor.generators[0].iter
            elif not isinstance(ancestor, ast.While):
                continue
            if once is not None and any(
                sub is node for sub in ast.walk(once)
            ):
                continue  # evaluated once here; keep scanning outward
            return True
        return False

    def visit_Call(self, node: ast.Call, ctx) -> None:
        name = call_name(node)
        if name in _SCALAR_CALLS and self._repeats(node, ctx):
            self.report(
                ctx, node,
                f"scalar materialization '{name}' inside a loop on a "
                "limb-plane hot path; hoist to one batched call, or "
                "annotate the fallback with its rationale",
            )
