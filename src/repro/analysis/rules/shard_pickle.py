"""shard-pickle-safety: shard-visible classes must stay picklable.

``ProcessFanout``/``ShardedFanout`` ship servers, replay caches, and
verifier state to worker processes via pickle (and ``make_shard``/
``fold_shard_state`` round-trips them back).  An attribute holding a
lock, socket, sqlite connection, generator, or lambda breaks that
silently — usually only under the process fan-out configuration that CI
exercises least.  Classes that declare ``__getstate__``/``__reduce__``
have opted into manual control (``TieredReplayCache`` drops its lock
and connection there) and are exempt.

The rule tracks per-function local-name taint so the common
``conn = sqlite3.connect(...); self._conn = conn`` two-step is caught,
not just direct assignment.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import call_name, dotted_name, expr_root

_PICKLE_HOOKS = frozenset({
    "__getstate__", "__reduce__", "__reduce_ex__", "__getnewargs__",
})

#: module roots whose constructed objects never pickle
_UNPICKLABLE_ROOTS = frozenset({"threading", "asyncio", "socket", "weakref"})
_UNPICKLABLE_DOTTED = frozenset({"sqlite3.connect", "sqlite3.Connection"})


def _unpicklable(value: ast.AST) -> "str | None":
    """Label if ``value`` evaluates to something pickle rejects."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.GeneratorExp):
        return "a generator"
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        if dotted in _UNPICKLABLE_DOTTED:
            return f"{dotted}(...)"
        root = expr_root(value.func)
        if root in _UNPICKLABLE_ROOTS:
            return f"{dotted or root}(...)"
        if call_name(value) == "open" and isinstance(value.func, ast.Name):
            return "an open file handle"
    return None


@register
class ShardPickleSafety(Checker):
    name = "shard-pickle-safety"
    description = (
        "unpicklable attribute (lock/socket/connection/lambda/generator) "
        "on a class shipped across the process fan-out without "
        "__getstate__/__reduce__"
    )
    targets = (
        "repro/protocol/server.py",
        "repro/protocol/replay.py",
        "repro/protocol/fanout.py",
        "repro/protocol/wire.py",
        "repro/snip/verifier.py",
        "repro/snip/proof.py",
        "repro/field/batch.py",
    )

    def __init__(self) -> None:
        #: (class node, has pickle hooks) innermost-last
        self._classes: "list[tuple[ast.ClassDef, bool]]" = []
        #: per-function local taint frames: name -> label
        self._frames: "list[dict[str, str]]" = []

    def visit_ClassDef(self, node: ast.ClassDef, ctx) -> None:
        exempt = any(
            isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub.name in _PICKLE_HOOKS
            for sub in ast.walk(node)
        )
        self._classes.append((node, exempt))

    def leave_ClassDef(self, node: ast.ClassDef, ctx) -> None:
        self._classes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx) -> None:
        self._frames.append({})

    def leave_FunctionDef(self, node: ast.FunctionDef, ctx) -> None:
        self._frames.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx) -> None:
        self._frames.append({})

    def leave_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx) -> None:
        self._frames.pop()

    def visit_Assign(self, node: ast.Assign, ctx) -> None:
        label = _unpicklable(node.value)
        frame = self._frames[-1] if self._frames else None
        if (
            label is None
            and frame is not None
            and isinstance(node.value, ast.Name)
        ):
            label = frame.get(node.value.id)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if frame is not None:
                    if label is not None:
                        frame[target.id] = label
                    else:
                        frame.pop(target.id, None)
            elif (
                label is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self._classes
            ):
                cls, exempt = self._classes[-1]
                if not exempt:
                    self.report(
                        ctx, node,
                        f"self.{target.attr} holds {label} but class "
                        f"'{cls.name}' defines no __getstate__/"
                        "__reduce__; the process fan-out ships this "
                        "object via pickle",
                    )
