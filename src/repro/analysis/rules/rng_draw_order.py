"""rng-draw-order: batched code must not interleave scalar rng draws.

The batch/scalar equivalence contract (PR 5's bug class) says a batched
function must consume randomness in exactly the per-submission order
its scalar counterpart would — which is only guaranteed when all draws
go through the order-preserving primitives (``expand_seed_batch``,
``draw_proof_randomness``, ``generate_triple``, ``new_seed`` per
submission).  A raw ``rng.randrange`` / scalar ``expand_seed`` /
``PrgStream`` constructed mid-way through a ``*_batch``/``*_many``
function draws in whatever order the surrounding loop happens to run,
silently diverging from the scalar path.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import call_name, dotted_name

#: scalar draw methods on a Random/SystemRandom-like object
_RNG_METHODS = frozenset({
    "randrange", "randint", "random", "randbytes",
    "getrandbits", "choice", "choices", "shuffle", "sample",
})

#: function-name fragments that mark batched (order-sensitive) code
_BATCH_MARKERS = ("batch", "_many", "planes")


def _is_rng_attribute(node: ast.AST) -> bool:
    """``rng.randrange`` / ``self.rng.choice`` style access."""
    if not isinstance(node, ast.Attribute) or node.attr not in _RNG_METHODS:
        return False
    return "rng" in dotted_name(node).split(".")


@register
class RngDrawOrder(Checker):
    name = "rng-draw-order"
    description = (
        "scalar rng draw (rng.randrange/scalar expand_seed/PrgStream/"
        "os.urandom) inside a batched *_batch/*_many/*_planes function"
    )
    targets = (
        "repro/snip/batch_prover.py",
        "repro/snip/prover.py",
        "repro/sharing/additive.py",
        "repro/field/batch.py",
        "repro/circuit/compiled.py",
    )

    def _batched_scope(self, ctx) -> "str | None":
        fn = ctx.enclosing_function()
        if fn is not None and any(m in fn.name for m in _BATCH_MARKERS):
            return fn.name
        return None

    def visit_Call(self, node: ast.Call, ctx) -> None:
        scope = self._batched_scope(ctx)
        if scope is None:
            return
        name = call_name(node)
        message = None
        if name == "PrgStream":
            message = "constructs a scalar PrgStream"
        elif name == "expand_seed":
            message = "calls scalar expand_seed"
        elif dotted_name(node.func) == "os.urandom":
            message = "draws raw bytes via os.urandom"
        elif _is_rng_attribute(node.func):
            message = f"draws scalar rng.{node.func.attr}"
        if message is not None:
            self.report(
                ctx, node,
                f"batched function '{scope}' {message}; draw order must "
                "come from the order-preserving primitives "
                "(expand_seed_batch/draw_proof_randomness/new_seed per "
                "submission)",
            )

    def visit_Assign(self, node: ast.Assign, ctx) -> None:
        scope = self._batched_scope(ctx)
        if scope is None:
            return
        if _is_rng_attribute(node.value):
            self.report(
                ctx, node,
                f"batched function '{scope}' aliases scalar draw method "
                f"'{dotted_name(node.value)}'; the bound method hides "
                "order-sensitive draws from review",
            )
