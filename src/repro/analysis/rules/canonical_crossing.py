"""canonical-crossing: lazily-reduced limbs must not escape public APIs.

``repro.field.batch`` deliberately lets limb planes go non-canonical
between operations (``_conv``/``_carry`` products, ``canonical=False``
fast paths) and re-normalizes with ``_barrett`` before anything leaves
the module.  A public function returning a still-tainted plane hands
callers values that compare unequal to their canonical forms — the
exact bug class the PR 7 fast paths flirted with.

The rule runs a statement-ordered taint pass per function: assignments
from ``_conv``/``_carry`` or from calls passing ``canonical=False``
taint the target; assignment from ``_barrett`` (or any name in the
cleansing set) clears it; returning a tainted name — or a raw
``_conv``/``_carry`` result — from a public function is a finding.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import (
    assign_targets,
    call_name,
    is_constant_false,
    keyword_value,
)

_TAINT_SOURCES = frozenset({"_conv", "_carry"})


@register
class CanonicalCrossing(Checker):
    name = "canonical-crossing"
    description = (
        "non-canonical limb plane (from _conv/_carry or canonical=False) "
        "returned from a public function without a _barrett reduction"
    )
    targets = (
        "repro/field/batch.py",
        "repro/field/ntt.py",
    )

    def __init__(self) -> None:
        #: one taint frame per enclosing function: name -> source label
        self._frames: "list[dict[str, str]]" = []

    # -- frame management -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef, ctx) -> None:
        self._frames.append({})

    def leave_FunctionDef(self, node: ast.FunctionDef, ctx) -> None:
        self._frames.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx) -> None:
        self._frames.append({})

    def leave_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx) -> None:
        self._frames.pop()

    # -- taint propagation ------------------------------------------------
    def _value_taint(self, value: ast.AST) -> "str | None":
        """Source label if ``value`` produces non-canonical limbs."""
        if isinstance(value, ast.Call):
            name = call_name(value)
            if name in _TAINT_SOURCES:
                return f"{name}(...)"
            # an explicit lazy request taints even a cleanser call
            if is_constant_false(keyword_value(value, "canonical")):
                return f"{name}(canonical=False)"
            # any other call (_barrett above all) yields canonical planes
            return None
        if isinstance(value, ast.Name) and self._frames:
            return self._frames[-1].get(value.id)
        return None

    def visit_Assign(self, node: ast.Assign, ctx) -> None:
        self._track(node)

    def visit_AnnAssign(self, node: ast.AnnAssign, ctx) -> None:
        self._track(node)

    def _track(self, node: ast.AST) -> None:
        if not self._frames:
            return
        frame = self._frames[-1]
        value = getattr(node, "value", None)
        if value is None:
            return
        taint = self._value_taint(value)
        for target in assign_targets(node):
            names = (
                [target] if isinstance(target, ast.Name)
                else [e for e in getattr(target, "elts", [])
                      if isinstance(e, ast.Name)]
            )
            for name_node in names:
                if taint is not None:
                    frame[name_node.id] = taint
                else:
                    frame.pop(name_node.id, None)

    # -- the actual check -------------------------------------------------
    def visit_Return(self, node: ast.Return, ctx) -> None:
        if node.value is None or not self._frames:
            return
        fn = ctx.enclosing_function()
        if fn is None or fn.name.startswith("_"):
            return  # private helpers may trade in raw limbs
        taint = self._value_taint(node.value)
        if taint is None and isinstance(node.value, ast.Name):
            taint = self._frames[-1].get(node.value.id)
        if taint is not None:
            self.report(
                ctx, node,
                f"public function '{fn.name}' returns non-canonical limbs "
                f"(tainted by {taint}); reduce with _barrett before "
                "crossing the module boundary",
            )
