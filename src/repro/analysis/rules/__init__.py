"""The shipped rules; importing this module registers all of them."""

from repro.analysis.rules import (  # noqa: F401 - registration side effects
    canonical_crossing,
    executor_lifecycle,
    plane_discipline,
    rng_draw_order,
    shard_pickle,
    wire_bounds,
)
