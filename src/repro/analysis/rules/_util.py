"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast


def call_name(node: ast.Call) -> str:
    """The called name: ``foo(...)`` -> ``foo``, ``a.b.foo(...)`` -> ``foo``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def call_root(node: ast.Call) -> str:
    """The leftmost name of the call target (``a.b.foo()`` -> ``a``)."""
    return expr_root(node.func)


def expr_root(node: ast.AST) -> str:
    """Leftmost name of an attribute/subscript/call chain, or ``""``."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return ""


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` as a string (empty for anything non-dotted)."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def name_tokens(node: ast.AST) -> "set[str]":
    """Every plain identifier mentioned anywhere inside ``node``."""
    return {
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    } | {
        child.attr for child in ast.walk(node)
        if isinstance(child, ast.Attribute)
    }


def keyword_value(node: ast.Call, name: str) -> "ast.AST | None":
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant_false(node: "ast.AST | None") -> bool:
    return isinstance(node, ast.Constant) and node.value is False


def assign_targets(node: ast.AST) -> "list[ast.AST]":
    """Targets of Assign/AnnAssign/AugAssign/NamedExpr (walrus)."""
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    if isinstance(node, ast.NamedExpr):
        return [node.target]
    return []
