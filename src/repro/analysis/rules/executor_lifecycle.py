"""executor-lifecycle: pools, tasks, and queues must have owners.

Three sub-checks, all rooted in bug classes this repo has already
shipped fixes for (PR 4's leaked ProcessPoolExecutor, PR 6's
fire-and-forget reader task, PR 8's worker teardown):

* a ``ThreadPoolExecutor``/``ProcessPoolExecutor`` constructed outside
  a ``with`` block must either transfer ownership (returned, passed as
  an argument) or be assigned somewhere whose enclosing scope shows
  teardown evidence (``shutdown``/``close``/``terminate`` called, or
  the name returned);
* an ``asyncio.create_task``/``ensure_future`` whose result is
  discarded is fire-and-forget — exceptions vanish and shutdown can't
  await it; an assigned task needs ``cancel`` evidence in scope;
* an ``asyncio.Queue()``/``queue.Queue()`` with no maxsize is an
  unbounded buffer — every queue in the pipeline is bounded so
  backpressure propagates instead of memory growing.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import call_name, dotted_name, name_tokens

_POOLS = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})
_TASK_SPAWNS = frozenset({"create_task", "ensure_future"})
_POOL_EVIDENCE = frozenset({"shutdown", "close", "terminate", "aclose"})
_TASK_EVIDENCE = frozenset({"cancel", "gather", "wait", "wait_for"})

#: parents that already transfer or scope ownership of the new object
_OWNERSHIP_PARENTS = (ast.withitem, ast.Return, ast.Call, ast.Yield)


@register
class ExecutorLifecycle(Checker):
    name = "executor-lifecycle"
    description = (
        "executor without teardown, fire-and-forget task, or unbounded "
        "queue"
    )
    targets = None  # lifecycle discipline is repo-wide

    def __init__(self) -> None:
        #: (node, message, scope node, evidence names, target tokens)
        self._pending: "list[tuple[ast.AST, str, ast.AST, frozenset, set]]" = []
        self._evidence_cache: "dict[int, set[str]]" = {}

    # -- classification ---------------------------------------------------
    def _scope(self, ctx, target_is_self: bool) -> ast.AST:
        if target_is_self:
            cls = ctx.enclosing_class()
            if cls is not None:
                return cls
        return ctx.enclosing_function() or ctx.tree

    def _defer(self, ctx, node, what: str, evidence: frozenset) -> None:
        """Queue an assigned pool/task for the end-of-file evidence check."""
        parent = ctx.parent(1)
        targets = []
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                list(parent.targets) if isinstance(parent, ast.Assign)
                else [parent.target]
            )
        target_is_self = any(
            isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name) and t.value.id == "self"
            for t in targets
        )
        tokens: "set[str]" = set()
        for t in targets:
            tokens |= name_tokens(t)
        tokens.discard("self")
        self._pending.append(
            (node, what, self._scope(ctx, target_is_self), evidence, tokens)
        )

    def visit_Call(self, node: ast.Call, ctx) -> None:
        name = call_name(node)
        parent = ctx.parent(1)
        if name in _POOLS:
            if isinstance(parent, _OWNERSHIP_PARENTS):
                return
            if isinstance(parent, ast.Expr):
                self.report(
                    ctx, node,
                    f"{name} constructed and immediately dropped; use a "
                    "with block or keep a handle to shut it down",
                )
                return
            self._defer(
                ctx, node,
                f"{name} assigned without teardown evidence "
                "(no shutdown/close/terminate call in scope)",
                _POOL_EVIDENCE,
            )
        elif name in _TASK_SPAWNS:
            root = dotted_name(node.func).split(".")[0]
            if root not in {"asyncio", name, "loop", "self"}:
                return
            if isinstance(parent, ast.Expr):
                self.report(
                    ctx, node,
                    f"fire-and-forget {name}: result discarded, so "
                    "exceptions vanish and shutdown cannot await or "
                    "cancel it",
                )
                return
            if isinstance(parent, _OWNERSHIP_PARENTS) or isinstance(
                parent, ast.Await
            ):
                return
            self._defer(
                ctx, node,
                f"task from {name} assigned without cancel/await "
                "evidence in scope",
                _TASK_EVIDENCE,
            )
        elif name == "Queue":
            dotted = dotted_name(node.func)
            if dotted not in {"Queue", "asyncio.Queue", "queue.Queue"}:
                return
            has_bound = bool(node.args) or any(
                kw.arg == "maxsize" for kw in node.keywords
            )
            if not has_bound:
                self.report(
                    ctx, node,
                    "unbounded Queue(); every pipeline queue is bounded "
                    "so backpressure propagates instead of memory "
                    "growing without limit",
                )

    # -- end-of-file evidence pass ----------------------------------------
    def _scope_evidence(self, scope: ast.AST) -> "tuple[set[str], set[str]]":
        """(called names, tokens flowing out via return/await) in scope."""
        key = id(scope)
        cached = self._evidence_cache.get(key)
        if cached is None:
            calls: "set[str]" = set()
            flow: "set[str]" = set()
            for sub in ast.walk(scope):
                if isinstance(sub, ast.Call):
                    calls.add(call_name(sub))
                elif isinstance(sub, ast.Return) and sub.value is not None:
                    flow |= name_tokens(sub.value)
                elif isinstance(sub, ast.Await):
                    flow |= name_tokens(sub.value)
            cached = (calls, flow)
            self._evidence_cache[key] = cached
        return cached

    def end_file(self, ctx) -> None:
        for node, message, scope, evidence, tokens in self._pending:
            calls, flow = self._scope_evidence(scope)
            if evidence & calls:
                continue
            if tokens & flow:  # returned or awaited by name
                continue
            self.report(ctx, node, message)
