"""Command line entry point: ``python -m repro.analysis <paths>``.

Exit codes are CI-friendly:

* ``0`` — scan completed, no unsuppressed findings;
* ``1`` — at least one unsuppressed finding (or a file failed to
  parse — a file the analyzer cannot see is not a clean file);
* ``2`` — usage error (unknown rule, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.driver import analyze_paths
from repro.analysis.registry import all_checkers


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-specific soundness lint (plane discipline, "
        "rng draw order, lifecycle safety)",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (e.g. src tests)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules", metavar="RULE[,RULE...]",
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print suppressed findings in human output",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    checkers = all_checkers()

    if args.list_rules:
        width = max(len(name) for name in checkers)
        for name, cls in checkers.items():
            print(f"{name:<{width}}  {cls.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    if args.rules:
        wanted = [name.strip() for name in args.rules.split(",") if name.strip()]
        unknown = [name for name in wanted if name not in checkers]
        if unknown:
            print(
                f"error: unknown rule(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        checkers = {name: checkers[name] for name in wanted}

    result = analyze_paths(args.paths, checkers)

    if args.format == "json":
        report = json.dumps(result.to_json(), indent=2, sort_keys=True)
    else:
        lines = [f.render() for f in result.unsuppressed]
        if args.show_suppressed:
            lines.extend(f.render() for f in result.suppressed)
        lines.extend(
            f"{path}: error: {message}" for path, message in result.errors
        )
        lines.append(
            f"{len(result.unsuppressed)} finding(s), "
            f"{len(result.suppressed)} suppressed, "
            f"{result.files_scanned} file(s) scanned"
        )
        report = "\n".join(lines)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)

    if result.unsuppressed or result.errors:
        return 1
    return 0
