"""Checker registry and the base class every rule extends."""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

#: rule name -> checker class, in registration order
_REGISTRY: "dict[str, type[Checker]]" = {}


def register(cls: "type[Checker]") -> "type[Checker]":
    """Class decorator adding a rule to the registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no rule name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name: {cls.name}")
    _REGISTRY[cls.name] = cls
    return cls


def all_checkers() -> "dict[str, type[Checker]]":
    """The registered rules (importing :mod:`repro.analysis.rules`
    populates this)."""
    import repro.analysis.rules  # noqa: F401 - registration side effect

    return dict(_REGISTRY)


class Checker:
    """One rule.  Subclasses are instantiated fresh per analyzed file.

    ``targets`` scopes the rule: a tuple of module-path suffixes
    (``"repro/field/batch.py"``); the rule activates only for files
    whose normalized module path ends with one of them (``None`` =
    every file).  Fixture files opt in with ``# repro: lint-as(...)``.

    The driver parses each file once and walks the tree once; during
    the walk it calls ``visit_<NodeType>``/``leave_<NodeType>`` on
    every active checker.  ``ctx`` is the shared
    :class:`~repro.analysis.driver.FileContext` — ancestor stack,
    enclosing function/class, suppressions — maintained by the driver
    so checkers never re-walk for structural questions.
    """

    #: rule identifier, the name used in ``# repro: allow(<name>)``
    name = ""
    #: one-line description for ``--list-rules`` and the docs
    description = ""
    #: module-path suffixes this rule applies to (None = all files)
    targets: "tuple[str, ...] | None" = None

    @classmethod
    def applies_to(cls, module: str) -> bool:
        if cls.targets is None:
            return True
        return any(module.endswith(suffix) for suffix in cls.targets)

    def begin_file(self, ctx) -> None:
        """Called once per file before the walk (whole tree available
        as ``ctx.tree`` for rules that need a pre-pass index)."""

    def end_file(self, ctx) -> None:
        """Called once per file after the walk."""

    def report(self, ctx, node: ast.AST, message: str) -> None:
        """File a finding at ``node``, honoring suppressions."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        ctx.findings.append(
            Finding(
                rule=self.name,
                path=ctx.path,
                module=ctx.module,
                line=line,
                col=col,
                message=message,
                suppressed=ctx.suppressions.is_suppressed(self.name, line),
            )
        )
