"""Suppression comments and file pragmas.

Two comment forms drive the analyzer, both parsed with :mod:`tokenize`
so string literals that merely *contain* the text cannot trigger them:

``# repro: allow(rule-a, rule-b)``
    Silences findings of the named rules (or every rule, with ``*``)
    on the comment's own line and on the line directly below it — so
    both trailing comments and own-line comments above the offending
    statement work.  Suppressed findings are still collected (the JSON
    report and ``--show-suppressed`` list them); they just never fail
    a run.  Every suppression is an *annotated intentional exception*:
    put the why next to the allow.

``# repro: lint-as(repro/field/batch.py)``
    Makes the file lint as if it were the named module, so rules
    scoped to hot-path modules apply.  This is how the fixture suite
    under ``tests/analysis/`` exercises module-scoped rules without
    living inside ``src/repro``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")
_LINT_AS_RE = re.compile(r"#\s*repro:\s*lint-as\(([^)]+)\)")


@dataclass
class Suppressions:
    """Per-file suppression state parsed from the comments."""

    #: line number -> set of rule names (or {"*"}) allowed there
    by_line: "dict[int, set[str]]" = field(default_factory=dict)
    #: module path override from ``lint-as``, if any
    lint_as: "str | None" = None

    def is_suppressed(self, rule: str, line: int) -> bool:
        for candidate in (line, line - 1):
            rules = self.by_line.get(candidate)
            if rules is not None and (rule in rules or "*" in rules):
                return True
        return False


def scan_suppressions(source: str) -> Suppressions:
    """Extract suppression comments and pragmas from ``source``.

    Tokenization errors (the analyzer may be pointed at a file that
    does not parse) degrade to "no suppressions" — the driver reports
    the syntax error separately.
    """
    out = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    comment_lines = {line for line, _ in comments}
    for line, text in comments:
        allow = _ALLOW_RE.search(text)
        if allow:
            rules = {
                name.strip() for name in allow.group(1).split(",")
                if name.strip()
            }
            if rules:
                # A multi-line rationale is encouraged, so the allow
                # extends through the consecutive comment lines below
                # it down to the first code line.
                out.by_line.setdefault(line, set()).update(rules)
                below = line + 1
                while below in comment_lines:
                    out.by_line.setdefault(below, set()).update(rules)
                    below += 1
        lint_as = _LINT_AS_RE.search(text)
        if lint_as and out.lint_as is None:
            out.lint_as = lint_as.group(1).strip()
    return out
