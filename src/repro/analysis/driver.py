"""Single-parse multi-visitor driver.

Each file is read and parsed exactly once; the AST is walked exactly
once, and every checker active for the file receives
``visit_<NodeType>`` / ``leave_<NodeType>`` events off that one
traversal.  The driver — not the checkers — maintains the structural
context rules keep needing (ancestor stack, enclosing function and
class), so adding a rule costs one visitor, not one walk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, all_checkers
from repro.analysis.suppress import Suppressions, scan_suppressions

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def normalize_module(path: str) -> str:
    """Repo-relative module path rules match against.

    ``src/repro/field/batch.py`` and an installed
    ``.../site-packages/repro/field/batch.py`` both normalize to
    ``repro/field/batch.py``; anything else keeps its posix form.
    """
    parts = Path(path).as_posix().split("/")
    for anchor in ("repro", "tests"):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor):])
    return "/".join(parts)


@dataclass
class FileContext:
    """Everything checkers may ask about the file being walked."""

    path: str
    module: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    findings: "list[Finding]" = field(default_factory=list)
    #: ancestor chain of the node currently being visited (outermost
    #: first; does not include the node itself)
    stack: "list[ast.AST]" = field(default_factory=list)

    def parent(self, depth: int = 1) -> "ast.AST | None":
        if depth <= len(self.stack):
            return self.stack[-depth]
        return None

    def enclosing_function(self) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
        for node in reversed(self.stack):
            if isinstance(node, _FUNCTION_NODES):
                return node
        return None

    def enclosing_class(self) -> "ast.ClassDef | None":
        for node in reversed(self.stack):
            if isinstance(node, ast.ClassDef):
                return node
        return None

    def in_loop(self) -> bool:
        """Inside a ``for``/``while`` body or a comprehension (without
        leaving the enclosing function)."""
        for node in reversed(self.stack):
            if isinstance(node, _FUNCTION_NODES):
                return False
            if isinstance(
                node,
                (ast.For, ast.AsyncFor, ast.While,
                 ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                return True
        return False


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run over a set of paths."""

    findings: "list[Finding]" = field(default_factory=list)
    files_scanned: int = 0
    #: files that failed to parse: (path, error message)
    errors: "list[tuple[str, str]]" = field(default_factory=list)

    @property
    def unsuppressed(self) -> "list[Finding]":
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> "list[Finding]":
        return [f for f in self.findings if f.suppressed]

    def to_json(self) -> dict:
        return {
            "files_scanned": self.files_scanned,
            "n_findings": len(self.unsuppressed),
            "n_suppressed": len(self.suppressed),
            "errors": [
                {"path": path, "error": message}
                for path, message in self.errors
            ],
            "findings": [f.to_json() for f in self.findings],
        }


class _Dispatcher:
    """Pre-resolved visit/leave method tables for one checker instance."""

    __slots__ = ("checker", "visit", "leave")

    def __init__(self, checker: Checker) -> None:
        self.checker = checker
        self.visit: "dict[type, object]" = {}
        self.leave: "dict[type, object]" = {}
        for attr in dir(checker):
            if attr.startswith("visit_"):
                node_type = getattr(ast, attr[len("visit_"):], None)
                if node_type is not None:
                    self.visit[node_type] = getattr(checker, attr)
            elif attr.startswith("leave_"):
                node_type = getattr(ast, attr[len("leave_"):], None)
                if node_type is not None:
                    self.leave[node_type] = getattr(checker, attr)


def analyze_source(
    source: str,
    path: str,
    checkers: "dict[str, type[Checker]] | None" = None,
) -> "list[Finding]":
    """Run every applicable rule over one file's source text."""
    if checkers is None:
        checkers = all_checkers()
    suppressions = scan_suppressions(source)
    module = suppressions.lint_as or normalize_module(path)
    tree = ast.parse(source, filename=path)
    active = [
        _Dispatcher(cls())
        for cls in checkers.values()
        if cls.applies_to(module)
    ]
    if not active:
        return []
    ctx = FileContext(
        path=path, module=module, source=source,
        tree=tree, suppressions=suppressions,
    )
    for dispatcher in active:
        dispatcher.checker.begin_file(ctx)
    _walk(tree, ctx, active)
    for dispatcher in active:
        dispatcher.checker.end_file(ctx)
    ctx.findings.sort(key=Finding.sort_key)
    return ctx.findings


def _walk(node: ast.AST, ctx: FileContext, active: "list[_Dispatcher]") -> None:
    node_type = type(node)
    for dispatcher in active:
        method = dispatcher.visit.get(node_type)
        if method is not None:
            method(node, ctx)
    ctx.stack.append(node)
    for child in ast.iter_child_nodes(node):
        _walk(child, ctx, active)
    ctx.stack.pop()
    for dispatcher in active:
        method = dispatcher.leave.get(node_type)
        if method is not None:
            method(node, ctx)


def iter_python_files(paths: "list[str]"):
    """Expand files/directories into sorted ``.py`` paths."""
    seen: "set[Path]" = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def analyze_paths(
    paths: "list[str]",
    checkers: "dict[str, type[Checker]] | None" = None,
) -> AnalysisResult:
    """Analyze every ``.py`` file under ``paths`` (files or trees)."""
    if checkers is None:
        checkers = all_checkers()
    result = AnalysisResult()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            result.errors.append((str(path), str(exc)))
            continue
        try:
            result.findings.extend(
                analyze_source(source, str(path), checkers)
            )
        except SyntaxError as exc:
            result.errors.append((str(path), f"syntax error: {exc}"))
            continue
        result.files_scanned += 1
    result.findings.sort(key=Finding.sort_key)
    return result
