"""Non-interactive zero-knowledge proofs for the comparison system.

Two standard sigma protocols, made non-interactive with Fiat-Shamir:

* :func:`prove_bit` / :func:`verify_bit` — a disjunctive Chaum-Pedersen
  proof that an ElGamal ciphertext encrypts 0 OR 1.  This is what the
  baseline uses to protect robustness, and its cost is the paper's
  headline contrast: ~2M exponentiations for the client per submission
  versus Prio's zero (Table 2, Figure 7).

* :func:`prove_dleq` / :func:`verify_dleq` — discrete-log equality, used
  by servers to show their partial decryptions are honest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.ec.p256 import GENERATOR, ORDER, Point, random_scalar, scalar_mult
from repro.nizk.elgamal import ElGamalCiphertext, NizkError


def _hash_challenge(*parts: bytes) -> int:
    digest = hashlib.sha256(b"prio-nizk" + b"".join(parts)).digest()
    return int.from_bytes(digest, "big") % ORDER


@dataclass(frozen=True)
class BitProof:
    """OR-composed Chaum-Pedersen transcript (two simulated-or-real legs)."""

    a0: Point
    b0: Point
    a1: Point
    b1: Point
    e0: int
    e1: int
    z0: int
    z1: int

    def encode(self) -> bytes:
        return (
            self.a0.encode() + self.b0.encode()
            + self.a1.encode() + self.b1.encode()
            + self.e0.to_bytes(32, "big") + self.e1.to_bytes(32, "big")
            + self.z0.to_bytes(32, "big") + self.z1.to_bytes(32, "big")
        )

    @staticmethod
    def encoded_size() -> int:
        return 4 * 33 + 4 * 32


def prove_bit(
    combined_pub: Point,
    ciphertext: ElGamalCiphertext,
    bit: int,
    randomness: int,
    rng,
) -> BitProof:
    """Prove ciphertext encrypts ``bit`` in {0,1} without revealing which.

    The real leg is an honest Chaum-Pedersen run; the other leg is
    simulated with a self-chosen challenge; Fiat-Shamir binds
    ``e0 + e1`` to the hash of everything.
    """
    if bit not in (0, 1):
        raise NizkError("bit must be 0 or 1")
    h = combined_pub
    c1, c2 = ciphertext.c1, ciphertext.c2
    # Statement targets: leg m says (c1, c2 - m*G) = k*(G, H).
    target0 = c2
    target1 = c2 - GENERATOR

    # Simulate the false leg.
    e_sim = random_scalar(rng)
    z_sim = random_scalar(rng)
    if bit == 0:
        # Simulate leg 1.
        a1 = scalar_mult(z_sim, GENERATOR) - scalar_mult(e_sim, c1)
        b1 = scalar_mult(z_sim, h) - scalar_mult(e_sim, target1)
        u = random_scalar(rng)
        a0 = scalar_mult(u, GENERATOR)
        b0 = scalar_mult(u, h)
        e_total = _hash_challenge(
            h.encode(), c1.encode(), c2.encode(),
            a0.encode(), b0.encode(), a1.encode(), b1.encode(),
        )
        e0 = (e_total - e_sim) % ORDER
        z0 = (u + e0 * randomness) % ORDER
        return BitProof(a0, b0, a1, b1, e0, e_sim, z0, z_sim)
    # bit == 1: simulate leg 0.
    a0 = scalar_mult(z_sim, GENERATOR) - scalar_mult(e_sim, c1)
    b0 = scalar_mult(z_sim, h) - scalar_mult(e_sim, target0)
    u = random_scalar(rng)
    a1 = scalar_mult(u, GENERATOR)
    b1 = scalar_mult(u, h)
    e_total = _hash_challenge(
        h.encode(), c1.encode(), c2.encode(),
        a0.encode(), b0.encode(), a1.encode(), b1.encode(),
    )
    e1 = (e_total - e_sim) % ORDER
    z1 = (u + e1 * randomness) % ORDER
    return BitProof(a0, b0, a1, b1, e_sim, e1, z_sim, z1)


def verify_bit(
    combined_pub: Point, ciphertext: ElGamalCiphertext, proof: BitProof
) -> bool:
    """Check both legs and the challenge split."""
    h = combined_pub
    c1, c2 = ciphertext.c1, ciphertext.c2
    e_total = _hash_challenge(
        h.encode(), c1.encode(), c2.encode(),
        proof.a0.encode(), proof.b0.encode(),
        proof.a1.encode(), proof.b1.encode(),
    )
    if (proof.e0 + proof.e1) % ORDER != e_total:
        return False
    target0 = c2
    target1 = c2 - GENERATOR
    checks = (
        (proof.z0, GENERATOR, proof.a0, proof.e0, c1),
        (proof.z0, h, proof.b0, proof.e0, target0),
        (proof.z1, GENERATOR, proof.a1, proof.e1, c1),
        (proof.z1, h, proof.b1, proof.e1, target1),
    )
    for z, base, commitment, e, target in checks:
        if scalar_mult(z, base) != commitment + scalar_mult(e, target):
            return False
    return True


@dataclass(frozen=True)
class DleqProof:
    """Chaum-Pedersen proof of log_G(pub) == log_base(share)."""

    a: Point
    b: Point
    z: int

    def encode(self) -> bytes:
        return self.a.encode() + self.b.encode() + self.z.to_bytes(32, "big")


def prove_dleq(
    secret: int, base: Point, public: Point, share: Point, rng
) -> DleqProof:
    u = random_scalar(rng)
    a = scalar_mult(u, GENERATOR)
    b = scalar_mult(u, base)
    e = _hash_challenge(
        base.encode(), public.encode(), share.encode(), a.encode(), b.encode()
    )
    z = (u + e * secret) % ORDER
    return DleqProof(a=a, b=b, z=z)


def verify_dleq(
    base: Point, public: Point, share: Point, proof: DleqProof
) -> bool:
    e = _hash_challenge(
        base.encode(), public.encode(), share.encode(),
        proof.a.encode(), proof.b.encode(),
    )
    if scalar_mult(proof.z, GENERATOR) != proof.a + scalar_mult(e, public):
        return False
    if scalar_mult(proof.z, base) != proof.b + scalar_mult(e, share):
        return False
    return True
