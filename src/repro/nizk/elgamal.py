"""Lifted (exponential) ElGamal over P-256.

The NIZK comparison system (Section 6: "similar to the cryptographically
verifiable interactive protocol of Kursawe et al. and ... the
'distributed decryption' variant of PrivEx") encrypts each 0/1 value as

    Enc(m; k) = (k*G,  m*G + k*H)

under the *combined* public key ``H = sum_j H_j`` of all servers.
Ciphertexts add component-wise (additive homomorphism), and decryption
requires every server's participation: each publishes a partial
decryption ``x_j * C1`` with a DLEQ proof, and the plaintext sum is the
discrete log of ``C2 - sum_j partial_j`` — recovered by baby-step
giant-step since the sum is at most the number of clients.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.ec.p256 import (
    GENERATOR,
    INFINITY,
    Point,
    random_scalar,
    scalar_mult,
)


class NizkError(ValueError):
    """Raised for malformed ciphertexts, proofs, or decryptions."""


@dataclass(frozen=True)
class ElGamalCiphertext:
    c1: Point
    c2: Point

    def __add__(self, other: "ElGamalCiphertext") -> "ElGamalCiphertext":
        return ElGamalCiphertext(self.c1 + other.c1, self.c2 + other.c2)

    def encode(self) -> bytes:
        return self.c1.encode() + self.c2.encode()

    @classmethod
    def identity(cls) -> "ElGamalCiphertext":
        return cls(INFINITY, INFINITY)


@dataclass(frozen=True)
class ServerKeyPair:
    secret: int
    public: Point

    @classmethod
    def generate(cls, rng=None) -> "ServerKeyPair":
        if rng is None:
            import random as _random

            rng = _random.Random(os.urandom(16))
        secret = random_scalar(rng)
        return cls(secret=secret, public=scalar_mult(secret, GENERATOR))


def combined_public_key(publics: list[Point]) -> Point:
    if not publics:
        raise NizkError("no server keys")
    acc = publics[0]
    for pub in publics[1:]:
        acc = acc + pub
    return acc


def encrypt_bit(
    combined_pub: Point, bit: int, rng
) -> tuple[ElGamalCiphertext, int]:
    """Encrypt m in {0,1}; returns the ciphertext and the randomness k
    (the OR-proof needs k as its witness)."""
    if bit not in (0, 1):
        raise NizkError("plaintext must be a bit")
    k = random_scalar(rng)
    c1 = scalar_mult(k, GENERATOR)
    c2 = scalar_mult(k, combined_pub)
    if bit:
        c2 = c2 + GENERATOR
    return ElGamalCiphertext(c1, c2), k


def partial_decrypt(secret: int, ciphertext: ElGamalCiphertext) -> Point:
    """One server's decryption share ``x_j * C1``."""
    return scalar_mult(secret, ciphertext.c1)


def combine_partials(
    ciphertext: ElGamalCiphertext, partials: list[Point]
) -> Point:
    """``m * G = C2 - sum_j partial_j``."""
    acc = ciphertext.c2
    for partial in partials:
        acc = acc - partial
    return acc


def discrete_log(target: Point, max_value: int) -> int:
    """Baby-step giant-step for 0 <= m <= max_value."""
    if target.infinity:
        return 0
    m = int(math.isqrt(max_value)) + 1
    # Baby steps: j*G for j in [0, m).
    baby: dict[bytes, int] = {}
    step = INFINITY
    for j in range(m):
        baby[step.encode()] = j
        step = step + GENERATOR
    # Giant steps: target - i*m*G.
    giant_stride = scalar_mult(m, GENERATOR)
    gamma = target
    for i in range(m + 1):
        j = baby.get(gamma.encode())
        if j is not None:
            value = i * m + j
            if value <= max_value:
                return value
        gamma = gamma - giant_stride
    raise NizkError(f"discrete log not found within [0, {max_value}]")
