"""The NIZK-based comparison system (the paper's primary baseline)."""

from repro.nizk.elgamal import (
    ElGamalCiphertext,
    NizkError,
    ServerKeyPair,
    combine_partials,
    combined_public_key,
    discrete_log,
    encrypt_bit,
    partial_decrypt,
)
from repro.nizk.proofs import (
    BitProof,
    DleqProof,
    prove_bit,
    prove_dleq,
    verify_bit,
    verify_dleq,
)
from repro.nizk.system import (
    CLIENT_EXPS_PER_ELEMENT,
    SERVER_EXPS_PER_ELEMENT,
    UPLOAD_BYTES_PER_ELEMENT,
    NizkDeployment,
    NizkServer,
    NizkSubmission,
    nizk_client_submit,
    nizk_server_transfer_bytes,
)

__all__ = [
    "ElGamalCiphertext",
    "NizkError",
    "ServerKeyPair",
    "combine_partials",
    "combined_public_key",
    "discrete_log",
    "encrypt_bit",
    "partial_decrypt",
    "BitProof",
    "DleqProof",
    "prove_bit",
    "prove_dleq",
    "verify_bit",
    "verify_dleq",
    "CLIENT_EXPS_PER_ELEMENT",
    "SERVER_EXPS_PER_ELEMENT",
    "UPLOAD_BYTES_PER_ELEMENT",
    "NizkDeployment",
    "NizkServer",
    "NizkSubmission",
    "nizk_client_submit",
    "nizk_server_transfer_bytes",
]
