"""The end-to-end NIZK private-aggregation baseline (Section 6).

Pipeline mirroring Prio's, built on public-key primitives throughout:

1. *Client*: encrypts each 0/1 component of its vector under the
   combined server key and attaches an OR-proof of bit-validity per
   component (~6 scalar multiplications each to produce).
2. *Servers*: every server verifies every proof (~8 scalar mults per
   component) and homomorphically accumulates accepted ciphertexts.
3. *Publish*: each server releases a partial decryption of every
   accumulator component with a DLEQ proof; anyone combines them and
   takes a baby-step-giant-step discrete log to obtain the totals.

This is the "NIZK" line of Figures 4-7: robust like Prio, private like
Prio, but paying public-key costs per element at both ends.
"""

from __future__ import annotations

import os
import random as _random
from dataclasses import dataclass, field as dc_field

from repro.ec.p256 import Point
from repro.nizk.elgamal import (
    ElGamalCiphertext,
    NizkError,
    ServerKeyPair,
    combine_partials,
    combined_public_key,
    discrete_log,
    encrypt_bit,
    partial_decrypt,
)
from repro.nizk.proofs import (
    BitProof,
    DleqProof,
    prove_bit,
    prove_dleq,
    verify_bit,
    verify_dleq,
)


@dataclass
class NizkSubmission:
    """One client's upload: per-component ciphertext + validity proof."""

    ciphertexts: list[ElGamalCiphertext]
    proofs: list[BitProof]

    def encoded_size(self) -> int:
        cipher_bytes = sum(len(c.encode()) for c in self.ciphertexts)
        proof_bytes = len(self.proofs) * BitProof.encoded_size()
        return cipher_bytes + proof_bytes


def nizk_client_submit(
    combined_pub: Point, bits: list[int], rng=None
) -> NizkSubmission:
    """Encrypt-and-prove a 0/1 vector."""
    if rng is None:
        rng = _random.Random(os.urandom(16))
    ciphertexts = []
    proofs = []
    for bit in bits:
        ciphertext, k = encrypt_bit(combined_pub, bit, rng)
        proofs.append(prove_bit(combined_pub, ciphertext, bit, k, rng))
        ciphertexts.append(ciphertext)
    return NizkSubmission(ciphertexts=ciphertexts, proofs=proofs)


class NizkServer:
    """One aggregation server: verifies proofs, accumulates ciphertexts."""

    def __init__(self, keypair: ServerKeyPair, combined_pub: Point, length: int):
        self.keypair = keypair
        self.combined_pub = combined_pub
        self.length = length
        self.accumulator: list[ElGamalCiphertext] = [
            ElGamalCiphertext.identity() for _ in range(length)
        ]
        self.accepted = 0
        self.rejected = 0

    def process(self, submission: NizkSubmission) -> bool:
        if (
            len(submission.ciphertexts) != self.length
            or len(submission.proofs) != self.length
        ):
            self.rejected += 1
            return False
        for ciphertext, proof in zip(submission.ciphertexts, submission.proofs):
            if not verify_bit(self.combined_pub, ciphertext, proof):
                self.rejected += 1
                return False
        for i, ciphertext in enumerate(submission.ciphertexts):
            self.accumulator[i] = self.accumulator[i] + ciphertext
        self.accepted += 1
        return True

    def decryption_shares(
        self, rng=None
    ) -> list[tuple[Point, DleqProof]]:
        """Partial decryptions of the accumulator, each DLEQ-proven."""
        if rng is None:
            rng = _random.Random(os.urandom(16))
        out = []
        for ciphertext in self.accumulator:
            share = partial_decrypt(self.keypair.secret, ciphertext)
            proof = prove_dleq(
                self.keypair.secret, ciphertext.c1,
                self.keypair.public, share, rng,
            )
            out.append((share, proof))
        return out


@dataclass
class NizkDeployment:
    """A full baseline deployment: s servers and the combined key."""

    servers: list[NizkServer]
    combined_pub: Point
    length: int
    publics: list[Point] = dc_field(default_factory=list)

    @classmethod
    def create(cls, n_servers: int, length: int, rng=None) -> "NizkDeployment":
        if n_servers < 2:
            raise NizkError("need at least two servers")
        if rng is None:
            rng = _random.Random(os.urandom(16))
        keypairs = [ServerKeyPair.generate(rng) for _ in range(n_servers)]
        publics = [kp.public for kp in keypairs]
        combined = combined_public_key(publics)
        servers = [NizkServer(kp, combined, length) for kp in keypairs]
        return cls(
            servers=servers, combined_pub=combined,
            length=length, publics=publics,
        )

    def submit(self, submission: NizkSubmission) -> bool:
        """All servers process; accepted only if all agree (they do —
        verification is deterministic — but the loop models real work)."""
        results = [server.process(submission) for server in self.servers]
        return all(results)

    def publish(self, max_total: int, rng=None, verify_shares: bool = True) -> list[int]:
        """Threshold-decrypt every accumulator slot."""
        all_shares = [server.decryption_shares(rng) for server in self.servers]
        totals = []
        for i in range(self.length):
            ciphertext = self.servers[0].accumulator[i]
            partials = []
            for server_index, shares in enumerate(all_shares):
                share, proof = shares[i]
                if verify_shares and not verify_dleq(
                    ciphertext.c1,
                    self.publics[server_index]
                    if self.publics
                    else self.servers[server_index].keypair.public,
                    share,
                    proof,
                ):
                    raise NizkError(
                        f"server {server_index} produced a bad decryption share"
                    )
                partials.append(share)
            point = combine_partials(ciphertext, partials)
            totals.append(discrete_log(point, max_total))
        return totals


# ----------------------------------------------------------------------
# Cost model constants (for Table 2 / Figure 6 accounting)
# ----------------------------------------------------------------------

#: scalar mults for a client to encrypt+prove one bit (2 enc + 4 proof)
CLIENT_EXPS_PER_ELEMENT = 6
#: scalar mults for a server to verify one bit proof
SERVER_EXPS_PER_ELEMENT = 8
#: upload bytes per element: ciphertext (66) + OR proof (260)
UPLOAD_BYTES_PER_ELEMENT = 66 + BitProof.encoded_size()


def nizk_server_transfer_bytes(length: int, n_servers: int) -> int:
    """Per-server server-to-server bytes for one submission.

    In the baseline every server must see the ciphertexts and proofs;
    the entry server relays them to its s-1 peers, and submissions are
    load-balanced across entry servers, so the *average* per-server
    transmit cost is (s-1)/s of the submission size — linear in the
    submission length, unlike Prio's constant (Figure 6).
    """
    total = length * UPLOAD_BYTES_PER_ELEMENT
    return total * (n_servers - 1) // n_servers
