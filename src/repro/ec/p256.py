"""NIST P-256 elliptic-curve group, implemented from scratch.

The paper's NIZK comparison system "uses OpenSSL's NIST P256 code" via
a Go wrapper; with no crypto libraries available offline, this module
provides the same group: the short-Weierstrass curve
``y^2 = x^3 - 3x + b`` over the P-256 prime, with Jacobian-coordinate
arithmetic and a fixed-window scalar multiplication.

It serves three consumers:

* :mod:`repro.nizk` — ElGamal bit encryptions and Chaum-Pedersen proofs
  (the baseline Prio is compared against in Figures 4-7);
* :mod:`repro.crypto` — the ECIES "box" construction standing in for
  NaCl box, and Schnorr signatures for client registration;
* benchmarks — exponentiation counts and measured scalar-mult times
  feed Table 2 and the Figure 7 SNARK cost model.

A module-level operation counter records scalar multiplications so the
benchmarks can report exact "exponentiation" counts without profiling.
"""

from __future__ import annotations

from dataclasses import dataclass

# Curve parameters (FIPS 186-4, curve P-256).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5
#: order of the base point (a prime)
ORDER = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551

_WINDOW_BITS = 4


class EcError(ValueError):
    """Raised for invalid points or encodings."""


# ----------------------------------------------------------------------
# Operation counting (benchmark instrumentation)
# ----------------------------------------------------------------------

_scalar_mult_count = 0


def reset_op_counter() -> None:
    global _scalar_mult_count
    _scalar_mult_count = 0


def scalar_mult_count() -> int:
    """Scalar multiplications ("exponentiations") since the last reset."""
    return _scalar_mult_count


# ----------------------------------------------------------------------
# Points
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Point:
    """An affine point; ``Point.INFINITY`` is the group identity."""

    x: int
    y: int
    infinity: bool = False

    def is_on_curve(self) -> bool:
        if self.infinity:
            return True
        x, y = self.x, self.y
        return (y * y - (x * x * x + A * x + B)) % P == 0

    def __add__(self, other: "Point") -> "Point":
        return _to_affine(_jac_add(_to_jacobian(self), _to_jacobian(other)))

    def __neg__(self) -> "Point":
        if self.infinity:
            return self
        return Point(self.x, (-self.y) % P)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def __rmul__(self, scalar: int) -> "Point":
        return scalar_mult(scalar, self)

    # -- serialization -------------------------------------------------

    def encode(self) -> bytes:
        """SEC1 compressed encoding (33 bytes; identity is b'\\x00')."""
        if self.infinity:
            return b"\x00"
        prefix = 0x02 | (self.y & 1)
        return bytes([prefix]) + self.x.to_bytes(32, "big")

    @classmethod
    def decode(cls, data: bytes) -> "Point":
        if data == b"\x00":
            return INFINITY
        if len(data) != 33 or data[0] not in (0x02, 0x03):
            raise EcError("bad point encoding")
        x = int.from_bytes(data[1:], "big")
        if x >= P:
            raise EcError("x out of range")
        rhs = (x * x * x + A * x + B) % P
        # p = 3 (mod 4): sqrt by exponentiation.
        y = pow(rhs, (P + 1) // 4, P)
        if (y * y - rhs) % P != 0:
            raise EcError("point not on curve")
        if (y & 1) != (data[0] & 1):
            y = P - y
        return cls(x, y)


INFINITY = Point(0, 0, infinity=True)
GENERATOR = Point(GX, GY)


# ----------------------------------------------------------------------
# Jacobian arithmetic (x = X/Z^2, y = Y/Z^3)
# ----------------------------------------------------------------------

_JacPoint = tuple[int, int, int]  # Z == 0 encodes infinity

_JAC_INFINITY: _JacPoint = (1, 1, 0)


def _to_jacobian(point: Point) -> _JacPoint:
    if point.infinity:
        return _JAC_INFINITY
    return (point.x, point.y, 1)


def _to_affine(jac: _JacPoint) -> Point:
    x, y, z = jac
    if z == 0:
        return INFINITY
    z_inv = pow(z, -1, P)
    z_inv2 = z_inv * z_inv % P
    return Point(x * z_inv2 % P, y * z_inv2 % P * z_inv % P)


def _jac_double(point: _JacPoint) -> _JacPoint:
    x, y, z = point
    if z == 0 or y == 0:
        return _JAC_INFINITY
    # dbl-2001-b (a = -3 specialisation).
    delta = z * z % P
    gamma = y * y % P
    beta = x * gamma % P
    alpha = 3 * (x - delta) * (x + delta) % P
    x3 = (alpha * alpha - 8 * beta) % P
    z3 = ((y + z) * (y + z) - gamma - delta) % P
    y3 = (alpha * (4 * beta - x3) - 8 * gamma * gamma) % P
    return (x3, y3, z3)


def _jac_add(p1: _JacPoint, p2: _JacPoint) -> _JacPoint:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2 % P * z2z2 % P
    s2 = y2 * z1 % P * z1z1 % P
    if u1 == u2:
        if s1 != s2:
            return _JAC_INFINITY
        return _jac_double(p1)
    h = (u2 - u1) % P
    i = (2 * h) * (2 * h) % P
    j = h * i % P
    r = 2 * (s2 - s1) % P
    v = u1 * i % P
    x3 = (r * r - j - 2 * v) % P
    y3 = (r * (v - x3) - 2 * s1 * j) % P
    z3 = ((z1 + z2) * (z1 + z2) - z1z1 - z2z2) % P * h % P
    return (x3, y3, z3)


def scalar_mult(scalar: int, point: Point) -> Point:
    """``scalar * point`` via a fixed 4-bit window."""
    global _scalar_mult_count
    _scalar_mult_count += 1
    scalar %= ORDER
    if scalar == 0 or point.infinity:
        return INFINITY
    base = _to_jacobian(point)
    # Precompute 0..15 multiples.
    table: list[_JacPoint] = [_JAC_INFINITY, base]
    for i in range(2, 1 << _WINDOW_BITS):
        table.append(_jac_add(table[i - 1], base))
    acc = _JAC_INFINITY
    n_windows = (scalar.bit_length() + _WINDOW_BITS - 1) // _WINDOW_BITS
    for w in range(n_windows - 1, -1, -1):
        if acc[2] != 0:
            for _ in range(_WINDOW_BITS):
                acc = _jac_double(acc)
        digit = (scalar >> (w * _WINDOW_BITS)) & ((1 << _WINDOW_BITS) - 1)
        if digit:
            acc = _jac_add(acc, table[digit])
    return _to_affine(acc)


def multi_scalar_mult(pairs: list[tuple[int, Point]]) -> Point:
    """Sum of scalar multiples (simple loop; adequate for the baseline)."""
    acc = _JAC_INFINITY
    for scalar, point in pairs:
        acc = _jac_add(acc, _to_jacobian(scalar_mult(scalar, point)))
    return _to_affine(acc)


def random_scalar(rng) -> int:
    """A uniform nonzero scalar mod the group order."""
    return rng.randrange(1, ORDER)
