"""NIST P-256 group, built from scratch (substrate for NIZKs and crypto)."""

from repro.ec.p256 import (
    GENERATOR,
    INFINITY,
    ORDER,
    EcError,
    Point,
    multi_scalar_mult,
    random_scalar,
    reset_op_counter,
    scalar_mult,
    scalar_mult_count,
)

__all__ = [
    "GENERATOR",
    "INFINITY",
    "ORDER",
    "EcError",
    "Point",
    "multi_scalar_mult",
    "random_scalar",
    "reset_op_counter",
    "scalar_mult",
    "scalar_mult_count",
]
